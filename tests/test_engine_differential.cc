// Cross-engine differential test: the three engines (Sync-GT, Async-GT,
// GraphTrek) are three implementations of one semantics, so on any graph
// and any valid GTravel plan they must return identical result sets — and
// all three must agree with the in-memory reference evaluator.
//
// The harness generates seeded random property graphs (two vertex types,
// two edge labels, integer properties, cycles and parallel paths so
// re-visits actually occur) and random plans mixing v()/e()/va()/ea()/rtn()
// including intermediate returns (the attribution protocol). A separate leg
// repeats the comparison under a FaultInjectingTransport that duplicates
// every kTraverse frame and drops a fraction on one link, checking the
// status-tracing restart path converges to the same answer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

// Detect ThreadSanitizer on both GCC (__SANITIZE_THREAD__) and Clang
// (__has_feature) so the seed count can shrink under instrumentation.
#if defined(__SANITIZE_THREAD__)
#define GT_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GT_UNDER_TSAN 1
#endif
#endif

#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/engine/client.h"
#include "src/engine/cluster.h"
#include "src/engine/straggler.h"
#include "src/lang/gtravel.h"
#include "src/rpc/fault_transport.h"
#include "tests/racing_harness.h"

namespace gt::engine {
namespace {

using graph::Catalog;
using graph::EdgeRecord;
using graph::PropValue;
using graph::RefGraph;
using graph::VertexId;
using graph::VertexRecord;
using lang::FilterOp;
using lang::GTravel;

// Random property graph: types A/B with an integer weight, edge labels
// x/y with an integer cost. Dense enough (and cyclic) that traversals
// revisit vertices, which is what exercises the travel cache, execution
// merging and trace dedup differently per engine.
RefGraph BuildRandomGraph(Catalog* catalog, Rng* rng, uint32_t n) {
  RefGraph g;
  const auto type_a = catalog->Intern("A");
  const auto type_b = catalog->Intern("B");
  const auto w_key = catalog->Intern("w");
  const auto p_key = catalog->Intern("p");
  const auto label_x = catalog->Intern("x");
  const auto label_y = catalog->Intern("y");

  for (VertexId v = 0; v < n; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = rng->Bernoulli(0.6) ? type_a : type_b;
    rec.props.Set(w_key, PropValue(static_cast<int64_t>(rng->Uniform(100))));
    g.AddVertex(rec);
  }
  const uint32_t edges = n * 3;
  for (uint32_t i = 0; i < edges; i++) {
    EdgeRecord e;
    e.src = rng->Uniform(n);
    e.dst = rng->Uniform(n);  // self-loops and duplicates are legal
    e.label = rng->Bernoulli(0.5) ? label_x : label_y;
    e.props.Set(p_key, PropValue(static_cast<int64_t>(rng->Uniform(100))));
    g.AddEdge(e);
  }
  return g;
}

// Random plan over the graph above. Always valid by construction (Build()
// is still asserted): anchored or scan start, 2-4 hops over x/y, optional
// vertex/edge property filters, optional rtn() markers including
// intermediate ones (which force the attribution protocol).
lang::TraversalPlan BuildRandomPlan(Catalog* catalog, Rng* rng, uint32_t n) {
  GTravel travel(catalog);

  if (rng->Bernoulli(0.75)) {
    // Anchored start: 1-3 random entry vertices (duplicates allowed — the
    // engines must dedup them identically).
    std::vector<VertexId> ids;
    const uint32_t k = 1 + static_cast<uint32_t>(rng->Uniform(3));
    for (uint32_t i = 0; i < k; i++) ids.push_back(rng->Uniform(n));
    travel.v(ids);
  } else {
    // Unanchored scan over one type index.
    travel.v().va("type", FilterOp::kEq, {PropValue(rng->Bernoulli(0.5) ? "A" : "B")});
  }
  if (rng->Bernoulli(0.2)) {
    const int64_t lo = static_cast<int64_t>(rng->Uniform(50));
    travel.va("w", FilterOp::kRange, {PropValue(lo), PropValue(lo + 45)});
  }
  if (rng->Bernoulli(0.15)) travel.rtn();

  const uint32_t hops = 2 + static_cast<uint32_t>(rng->Uniform(3));
  for (uint32_t h = 0; h < hops; h++) {
    travel.e(rng->Bernoulli(0.5) ? "x" : "y");
    if (rng->Bernoulli(0.25)) {
      const int64_t lo = static_cast<int64_t>(rng->Uniform(40));
      travel.ea("p", FilterOp::kRange, {PropValue(lo), PropValue(lo + 55)});
    }
    if (rng->Bernoulli(0.2)) {
      travel.va("w", FilterOp::kRange, {PropValue(int64_t{0}), PropValue(int64_t{85})});
    }
    // Intermediate rtn() on non-final hops triggers per-vertex attribution
    // through the answer tree; a final rtn() is the direct protocol.
    if (rng->Bernoulli(0.3)) travel.rtn();
  }

  auto plan = travel.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

// Extended random plan: every language extension, one flavor per plan so
// each seed sweep covers all of them. Flavor 0 is the legacy generator
// above (rtn/attribution); 1 = repeat/until loops (optionally aggregated);
// 2 = count()/group() terminals; 3 = branch() unions (optionally with
// repeat inside alternatives and an aggregate terminal); 4 = path() chains
// (hop count capped by the kMaxPathSteps validation rule).
lang::TraversalPlan BuildRandomExtPlan(Catalog* catalog, Rng* rng, uint32_t n) {
  const uint32_t flavor = rng->Uniform(5);
  if (flavor == 0) return BuildRandomPlan(catalog, rng, n);

  GTravel travel(catalog);
  if (rng->Bernoulli(0.7)) {
    std::vector<VertexId> ids;
    const uint32_t k = 1 + static_cast<uint32_t>(rng->Uniform(3));
    for (uint32_t i = 0; i < k; i++) ids.push_back(rng->Uniform(n));
    travel.v(ids);
  } else {
    travel.v().va("type", FilterOp::kEq, {PropValue(rng->Bernoulli(0.5) ? "A" : "B")});
  }

  auto random_hop = [&](GTravel& t, bool allow_repeat) {
    t.e(rng->Bernoulli(0.5) ? "x" : "y");
    if (allow_repeat && rng->Bernoulli(0.35)) {
      t.repeat(2 + static_cast<uint32_t>(rng->Uniform(2)));
    }
    if (rng->Bernoulli(0.25)) {
      const int64_t lo = static_cast<int64_t>(rng->Uniform(40));
      t.ea("p", FilterOp::kRange, {PropValue(lo), PropValue(lo + 55)});
    }
    if (rng->Bernoulli(0.2)) {
      t.va("w", FilterOp::kRange, {PropValue(int64_t{0}), PropValue(int64_t{85})});
    }
  };

  switch (flavor) {
    case 1: {  // repeat/until
      const uint32_t hops = 1 + static_cast<uint32_t>(rng->Uniform(3));
      for (uint32_t h = 0; h < hops; h++) random_hop(travel, /*allow_repeat=*/true);
      if (rng->Bernoulli(0.6)) {
        const int64_t lo = static_cast<int64_t>(rng->Uniform(60));
        travel.until("w", FilterOp::kRange, {PropValue(lo), PropValue(lo + 30)});
      }
      if (rng->Bernoulli(0.3)) {
        rng->Bernoulli(0.5) ? travel.count()
                            : travel.group(rng->Bernoulli(0.5) ? "w" : "type");
      }
      break;
    }
    case 2: {  // aggregate terminals
      const uint32_t hops = 2 + static_cast<uint32_t>(rng->Uniform(3));
      for (uint32_t h = 0; h < hops; h++) random_hop(travel, /*allow_repeat=*/false);
      if (rng->Bernoulli(0.5)) {
        if (rng->Bernoulli(0.3)) travel.rtn();  // count() composes with rtn()
        travel.count();
      } else {
        travel.group(rng->Bernoulli(0.5) ? "w" : "type");
      }
      break;
    }
    case 3: {  // branch unions
      if (rng->Bernoulli(0.5)) random_hop(travel, /*allow_repeat=*/false);
      std::vector<GTravel> alts;
      const uint32_t num_alts = 2 + static_cast<uint32_t>(rng->Uniform(2));
      for (uint32_t a = 0; a < num_alts; a++) {
        GTravel alt = GTravel::Alt(catalog);
        const uint32_t alt_hops = 1 + static_cast<uint32_t>(rng->Uniform(2));
        for (uint32_t h = 0; h < alt_hops; h++) random_hop(alt, /*allow_repeat=*/true);
        alts.push_back(std::move(alt));
      }
      travel.branch(std::move(alts));
      if (rng->Bernoulli(0.4)) random_hop(travel, /*allow_repeat=*/false);
      if (rng->Bernoulli(0.3)) {
        rng->Bernoulli(0.5) ? travel.count()
                            : travel.group(rng->Bernoulli(0.5) ? "w" : "type");
      }
      break;
    }
    default: {  // path chains
      const uint32_t hops = 2 + static_cast<uint32_t>(rng->Uniform(2));
      for (uint32_t h = 0; h < hops; h++) random_hop(travel, /*allow_repeat=*/false);
      travel.path();
      break;
    }
  }

  auto plan = travel.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

// Mode-aware comparison of one engine result against the extended
// reference evaluation.
void ExpectMatchesRefEval(const lang::TraversalPlan& plan, const TraversalResult& result,
                          const lang::RefEvalResult& oracle) {
  switch (plan.result_mode) {
    case lang::ResultMode::kVertices:
      EXPECT_EQ(result.vids, oracle.vids);
      break;
    case lang::ResultMode::kCount:
      EXPECT_EQ(result.count, oracle.count);
      EXPECT_TRUE(result.vids.empty());
      break;
    case lang::ResultMode::kGroup:
      EXPECT_EQ(result.groups, oracle.groups);
      break;
    case lang::ResultMode::kPaths: {
      EXPECT_EQ(result.paths, oracle.paths);
      if (result.paths != oracle.paths) {
        std::vector<std::vector<graph::VertexId>> extra, missing;
        std::set_difference(result.paths.begin(), result.paths.end(),
                            oracle.paths.begin(), oracle.paths.end(),
                            std::back_inserter(extra));
        std::set_difference(oracle.paths.begin(), oracle.paths.end(),
                            result.paths.begin(), result.paths.end(),
                            std::back_inserter(missing));
        auto render = [](const std::vector<std::vector<graph::VertexId>>& ps) {
          std::string s;
          for (size_t i = 0; i < ps.size() && i < 8; i++) {
            s += " [";
            for (size_t j = 0; j < ps[i].size(); j++) {
              if (j) s += ",";
              s += std::to_string(ps[i][j]);
            }
            s += "]";
          }
          return s;
        };
        ADD_FAILURE() << "paths diff: " << extra.size() << " extra:" << render(extra)
                      << " | " << missing.size() << " missing:" << render(missing);
      }
      break;
    }
  }
}

constexpr EngineMode kAllModes[] = {EngineMode::kSync, EngineMode::kAsyncPlain,
                                    EngineMode::kGraphTrek};

TEST(EngineDifferentialTest, AllEnginesMatchOracleOnRandomWorkloads) {
#if defined(GT_UNDER_TSAN)
  const uint64_t seeds = 6;  // instrumented runs cost ~10x; keep coverage daily-size
#else
  const uint64_t seeds = 20;
#endif
  for (uint64_t seed = 1; seed <= seeds; seed++) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 7919);
    ClusterConfig cfg;
    cfg.num_servers = 3;
    auto cluster = Cluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    Catalog* catalog = (*cluster)->catalog();

    const uint32_t n = 60 + static_cast<uint32_t>(rng.Uniform(60));
    RefGraph g = BuildRandomGraph(catalog, &rng, n);
    ASSERT_TRUE((*cluster)->Load(g).ok());

    // Several plans per graph amortize the cluster setup cost. The extended
    // generator rotates through every language flavor (legacy rtn, repeat/
    // until, count/group, branch, path).
    for (int q = 0; q < 5; q++) {
      SCOPED_TRACE("query=" + std::to_string(q));
      const lang::TraversalPlan plan = BuildRandomExtPlan(catalog, &rng, n);
      const lang::RefEvalResult oracle =
          lang::EvaluatePlanExtOnRefGraph(plan, g, *catalog);
      for (EngineMode mode : kAllModes) {
        SCOPED_TRACE(EngineModeName(mode));
        const ServerId coordinator =
            static_cast<ServerId>(rng.Uniform(cfg.num_servers));
        // Every run executes twice: the first pass populates the adjacency
        // cache (cold), the second is served from it (warm). A stale or
        // torn cached row would make the passes disagree with the oracle
        // or each other, so this doubles as the cache's differential gate.
        for (int pass = 0; pass < 2; pass++) {
          SCOPED_TRACE(pass == 0 ? "cache=cold" : "cache=warm");
          auto result = (*cluster)->Run(plan, mode, coordinator);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          // TraversalResult::vids/paths are sorted + deduplicated, as is
          // the oracle, so vector equality is multiset equality.
          ExpectMatchesRefEval(plan, *result, oracle);
        }
      }
    }
  }
}

// Planner equality leg: the statistics-driven rewrites must be result-
// identical. Two clusters over the same graph — one with the coordinator
// planner on, one off — run the same randomized extended plans on all
// three engines; both must agree with the reference evaluator (and hence
// each other) for every result mode.
TEST(EngineDifferentialTest, PlannerOnMatchesPlannerOff) {
#if defined(GT_UNDER_TSAN)
  const uint64_t seeds = 3;
#else
  const uint64_t seeds = 8;
#endif
  for (uint64_t seed = 1; seed <= seeds; seed++) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 15485863);
    ClusterConfig cfg_off;
    cfg_off.num_servers = 3;
    ClusterConfig cfg_on = cfg_off;
    cfg_on.planner = true;
    auto off = Cluster::Create(cfg_off);
    ASSERT_TRUE(off.ok());
    auto on = Cluster::Create(cfg_on);
    ASSERT_TRUE(on.ok());
    // One interning authority: clusters share no catalog state otherwise.
    Catalog* catalog = (*off)->catalog();

    const uint32_t n = 50 + static_cast<uint32_t>(rng.Uniform(50));
    RefGraph g = BuildRandomGraph(catalog, &rng, n);
    ASSERT_TRUE((*off)->Load(g).ok());
    // Replay the same interned names into the planner cluster's catalog so
    // label/property ids line up across both deployments.
    for (graph::Catalog::Id id = 0; id < catalog->size(); id++) {
      auto name = catalog->Name(id);
      ASSERT_TRUE(name.ok());
      ASSERT_EQ((*on)->catalog()->Intern(*name), id);
    }
    ASSERT_TRUE((*on)->Load(g).ok());

    for (int q = 0; q < 4; q++) {
      SCOPED_TRACE("query=" + std::to_string(q));
      const lang::TraversalPlan plan = BuildRandomExtPlan(catalog, &rng, n);
      const lang::RefEvalResult oracle =
          lang::EvaluatePlanExtOnRefGraph(plan, g, *catalog);
      for (EngineMode mode : kAllModes) {
        SCOPED_TRACE(EngineModeName(mode));
        auto r_off = (*off)->Run(plan, mode);
        ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();
        auto r_on = (*on)->Run(plan, mode);
        ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();
        ExpectMatchesRefEval(plan, *r_off, oracle);
        ExpectMatchesRefEval(plan, *r_on, oracle);
        EXPECT_EQ(r_on->vids, r_off->vids);
        EXPECT_EQ(r_on->count, r_off->count);
        EXPECT_EQ(r_on->groups, r_off->groups);
        EXPECT_EQ(r_on->paths, r_off->paths);
      }
    }
  }
}

TEST(EngineDifferentialTest, AsyncEnginesMatchOracleUnderDuplicationAndDrops) {
  // Idempotence leg: duplicate every kTraverse frame on every link, and
  // additionally drop a fraction of them on one link so the failure
  // detector's restart path runs. Only kTraverse is exercised because only
  // frontier hand-offs are idempotent by design (exec-id dedup absorbs
  // re-delivered frames; duplicated kReturnVertices/kSyncBatch frames would
  // double-count protocol state, which the transport never re-delivers).
  // The sync engine does not use kTraverse, so this leg covers the two
  // asynchronous engines.
#if defined(GT_UNDER_TSAN)
  const uint64_t seeds = 2;
#else
  const uint64_t seeds = 5;
#endif
  for (uint64_t seed = 1; seed <= seeds; seed++) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 104729);
    ClusterConfig cfg;
    cfg.num_servers = 3;
    cfg.net_faults = true;
    cfg.net_fault_seed = seed;
    cfg.exec_timeout_ms = 1000;  // lost work must be re-detected quickly
    auto cluster = Cluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    Catalog* catalog = (*cluster)->catalog();

    const uint32_t n = 40 + static_cast<uint32_t>(rng.Uniform(30));
    RefGraph g = BuildRandomGraph(catalog, &rng, n);
    ASSERT_TRUE((*cluster)->Load(g).ok());

    rpc::LinkFault dup;
    dup.duplicate_probability = 1.0;
    dup.only_type = rpc::MsgType::kTraverse;
    (*cluster)->fault_transport()->SetLinkFault(rpc::kAnyEndpoint,
                                                rpc::kAnyEndpoint, dup);
    rpc::LinkFault lossy = dup;
    lossy.drop_probability = 0.2;
    (*cluster)->fault_transport()->SetLinkFault(1, 2, lossy);

    const lang::TraversalPlan plan = BuildRandomExtPlan(catalog, &rng, n);
    const lang::RefEvalResult oracle = lang::EvaluatePlanExtOnRefGraph(plan, g, *catalog);
    auto client = (*cluster)->NewClient();
    for (EngineMode mode : {EngineMode::kAsyncPlain, EngineMode::kGraphTrek}) {
      SCOPED_TRACE(EngineModeName(mode));
      RunOptions opts;
      opts.mode = mode;
      opts.coordinator = 0;
      opts.max_restarts = 8;  // drops can kill several attempts in a row
      auto result = client->Run(plan, opts);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectMatchesRefEval(plan, *result, oracle);
    }
    EXPECT_GT(
        (*cluster)->fault_transport()->stats().messages_duplicated.load(), 0u);
    // The engines must have actually absorbed re-deliveries (not merely
    // gotten lucky): the dedup counter is part of the exposed registry.
    EXPECT_GT(metrics::Registry::Default()->Sum("gt_engine_duplicate_frames_total"),
              0.0);
  }
}

// Mutate-while-traversing: a Darshan trickle-ingest stream plus churn on
// the queried subgraph races random travels on all three engines. Each
// travel is compared to the reference evaluator on the frozen copy of the
// graph at its own pin point (DumpAtTravelPin) — see racing_harness.h.
TEST(EngineDifferentialTest, MutationsRacingTravelsMatchPinnedOracle) {
#if defined(GT_UNDER_TSAN)
  const uint64_t seeds = 1;
  const int travels = 9;
#else
  const uint64_t seeds = 3;
  const int travels = 15;
#endif
  for (uint64_t seed = 1; seed <= seeds; seed++) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ClusterConfig cfg;
    cfg.num_servers = 3;
    cfg.retain_snapshots_for_test = true;
    auto cluster = Cluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());

    auto mutator = (*cluster)->NewClient();
    auto traveler = (*cluster)->NewClient();
    gt::testing::RacingEnv env;
    env.mutator = mutator.get();
    env.traveler = traveler.get();
    env.catalog = (*cluster)->catalog();
    env.dump_at_pin = [&](TravelId t) { return (*cluster)->DumpAtTravelPin(t); };
    env.has_residue = [&](TravelId t) {
      for (uint32_t s = 0; s < cfg.num_servers; s++) {
        if ((*cluster)->server(s)->HasTravelResidue(t)) return true;
      }
      return false;
    };
    gt::testing::RunMutateRacingLeg(env, seed, travels);

    // Draining the retained pins must release every KV snapshot: nothing
    // else may be left holding compaction GC hostage.
    (*cluster)->DropRetainedSnapshotsForTest();
    for (uint32_t s = 0; s < cfg.num_servers; s++) {
      EXPECT_EQ((*cluster)->store(s)->db()->NumLiveSnapshots(), 0u) << s;
    }
  }
}

// Deterministic torn-read control: proves the differential leg actually
// catches the bug the snapshot pin fixes. A 3-vertex chain 1 -x-> 2 -x-> 3
// is traversed while vertex 2 is deleted mid-travel (the step-0 access is
// stalled long enough for the delete to land first). With snapshot
// isolation the travel answers from its pin ({3}); with isolation off it
// reads the live store and sees the torn graph (deleted mid-path vertex).
TEST(EngineDifferentialTest, TornReadControlRequiresSnapshotIsolation) {
  for (const bool isolation : {true, false}) {
    SCOPED_TRACE(isolation ? "snapshot_isolation=on" : "snapshot_isolation=off");
    ClusterConfig cfg;
    cfg.num_servers = 3;
    cfg.snapshot_isolation = isolation;
    cfg.retain_snapshots_for_test = true;
    auto cluster = Cluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    Catalog* catalog = (*cluster)->catalog();

    auto client = (*cluster)->NewClient();
    for (VertexId v : {1u, 2u, 3u}) {
      ASSERT_TRUE(client->PutVertex(v, "A", {{"w", PropValue(int64_t(v))}}).ok());
    }
    ASSERT_TRUE(client->PutEdge(1, "x", 2).ok());
    ASSERT_TRUE(client->PutEdge(2, "x", 3).ok());

    GTravel travel(catalog);
    travel.v({1}).e("x").e("x");
    auto plan = travel.Build();
    ASSERT_TRUE(plan.ok());

    // Stall the anchor's step-0 access on every server (only its owner
    // fires) so the delete below is guaranteed to land mid-travel, after
    // admission/pinning but before the traversal reaches vertex 2.
    for (uint32_t s = 0; s < cfg.num_servers; s++) {
      (*cluster)->straggler()->AddRule(
          StragglerRule{.server_id = s, .step = 0, .delay_us = 400000, .max_hits = 1});
    }

    RunOptions opts;
    opts.mode = EngineMode::kGraphTrek;
    auto submitted = client->Submit(*plan, opts);
    ASSERT_TRUE(submitted.ok());

    // Wait for the travel to be inside the stalled access, then delete the
    // mid-path vertex. The synchronous ack returns in well under the 400ms
    // stall, so the ordering is deterministic.
    const auto stall_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((*cluster)->straggler()->total_injected_delays() == 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), stall_deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(client->DeleteVertex(2).ok());

    auto result = client->Await(*submitted);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // The frozen-copy oracle at the pin point. With isolation on the pin
    // predates the delete, so the oracle sees the full chain; with
    // isolation off there is no pin and DumpAtTravelPin degrades to the
    // live (post-delete) state.
    auto frozen = (*cluster)->DumpAtTravelPin(result->travel_id);
    ASSERT_TRUE(frozen.ok());
    const std::vector<VertexId> oracle =
        lang::EvaluatePlanOnRefGraph(*plan, *frozen, *catalog);

    if (isolation) {
      EXPECT_NE(frozen->FindVertex(2), nullptr);
      EXPECT_EQ(oracle, (std::vector<VertexId>{3}));
      EXPECT_EQ(result->vids, oracle);
    } else {
      // The unpinned travel walked 1 -> 2 before the delete but found 2
      // gone when visiting it: a torn read the frozen-at-submit oracle
      // ({3}) flags. This is the pre-fix behaviour the leg exists to catch.
      EXPECT_EQ(frozen->FindVertex(2), nullptr);
      EXPECT_EQ(result->vids, std::vector<VertexId>{});
      EXPECT_NE(result->vids, (std::vector<VertexId>{3}));
    }
  }
}

}  // namespace
}  // namespace gt::engine
