// Additional engine tests: OR-composition via traversal unions, traversal
// robustness under concurrent live updates, sync-engine progress, and
// stress of many sequential traversals on one cluster (state cleanup).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/engine/cluster.h"
#include "src/lang/gtravel.h"

namespace gt::engine {
namespace {

using graph::Catalog;
using graph::EdgeRecord;
using graph::PropValue;
using graph::RefGraph;
using graph::VertexId;
using graph::VertexRecord;
using lang::FilterOp;
using lang::GTravel;

RefGraph TwoColorGraph(Catalog* catalog) {
  // user 1 -run-> jobs; half the jobs tagged "red", half "blue".
  RefGraph g;
  const auto user_t = catalog->Intern("User");
  const auto job_t = catalog->Intern("Job");
  const auto run = catalog->Intern("run");
  const auto color = catalog->Intern("color");

  VertexRecord u;
  u.id = 1;
  u.label = user_t;
  g.AddVertex(u);
  for (VertexId j = 10; j < 20; j++) {
    VertexRecord job;
    job.id = j;
    job.label = job_t;
    job.props.Set(color, PropValue(j % 2 == 0 ? "red" : "blue"));
    g.AddVertex(job);
    EdgeRecord e;
    e.src = 1;
    e.label = run;
    e.dst = j;
    g.AddEdge(e);
  }
  return g;
}

TEST(EngineExtrasTest, RunUnionImplementsOrSemantics) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = TwoColorGraph(catalog);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  // color == red OR color == blue, expressed as two traversals (the paper's
  // prescription; the language only AND-composes).
  auto red = GTravel(catalog).v({1}).e("run").va("color", FilterOp::kEq, {PropValue("red")}).Build();
  auto blue =
      GTravel(catalog).v({1}).e("run").va("color", FilterOp::kEq, {PropValue("blue")}).Build();
  ASSERT_TRUE(red.ok());
  ASSERT_TRUE(blue.ok());

  auto client = (*cluster)->NewClient();
  RunOptions opts;
  opts.mode = EngineMode::kGraphTrek;
  auto result = client->RunUnion({*red, *blue}, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->vids,
            (std::vector<VertexId>{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}));

  // The union of disjoint halves equals the unfiltered traversal.
  auto all = GTravel(catalog).v({1}).e("run").Build();
  ASSERT_TRUE(all.ok());
  auto expected = (*cluster)->Run(*all, EngineMode::kGraphTrek);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(result->vids, expected->vids);
}

TEST(EngineExtrasTest, TraversalsSurviveConcurrentLiveUpdates) {
  // Mutations racing a traversal must never crash or wedge the engine; the
  // traversal sees some consistent prefix of the updates.
  ClusterConfig cfg;
  cfg.num_servers = 3;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();

  auto writer_client = (*cluster)->NewClient();
  ASSERT_TRUE(writer_client->PutVertex(1, "User").ok());
  for (VertexId j = 0; j < 50; j++) {
    ASSERT_TRUE(writer_client->PutVertex(100 + j, "Job").ok());
    ASSERT_TRUE(writer_client->PutEdge(1, "run", 100 + j).ok());
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    VertexId next = 500;
    while (!stop.load()) {
      writer_client->PutVertex(next, "Job").ok();
      writer_client->PutEdge(1, "run", next).ok();
      next++;
    }
  });

  auto plan = GTravel(catalog).v({1}).e("run").Build();
  ASSERT_TRUE(plan.ok());
  for (int i = 0; i < 10; i++) {
    auto result = (*cluster)->Run(*plan, i % 2 == 0 ? EngineMode::kGraphTrek
                                                    : EngineMode::kSync);
    ASSERT_TRUE(result.ok()) << i << ": " << result.status().ToString();
    EXPECT_GE(result->vids.size(), 50u) << i;  // at least the pre-loaded jobs
  }
  stop = true;
  writer.join();
}

TEST(EngineExtrasTest, ManySequentialTraversalsDoNotLeakState) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = TwoColorGraph(catalog);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  auto plan = GTravel(catalog).v({1}).e("run").Build();
  ASSERT_TRUE(plan.ok());
  for (int i = 0; i < 50; i++) {
    auto result = (*cluster)->Run(*plan, EngineMode::kGraphTrek);
    ASSERT_TRUE(result.ok()) << i;
    ASSERT_EQ(result->vids.size(), 10u) << i;
  }
  // Cleanup broadcasts drain the per-travel state; poll for the caches.
  bool clean = false;
  for (int i = 0; i < 200 && !clean; i++) {
    clean = (*cluster)->server(0)->cache_size() == 0 &&
            (*cluster)->server(1)->cache_size() == 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(clean);
  EXPECT_EQ((*cluster)->server(0)->queue_depth(), 0u);
}

TEST(EngineExtrasTest, ProgressForUnknownTravelIsEmpty) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  auto progress = client->Progress(/*travel=*/123456, /*coordinator=*/0);
  ASSERT_TRUE(progress.ok());
  EXPECT_EQ(progress->total_created, 0u);
  EXPECT_TRUE(progress->unfinished_per_step.empty());
}

TEST(EngineExtrasTest, SyncEngineTracksLastActivityUnderLongSteps) {
  // A sync traversal with a slow device must not trip the failure detector
  // as long as steps keep completing (last_activity refreshes per step).
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.exec_timeout_ms = 400;
  cfg.device.access_latency_us = 3000;  // each step takes a noticeable time
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();

  RefGraph g;
  const auto t = catalog->Intern("N");
  const auto next = catalog->Intern("next");
  for (VertexId v = 0; v < 40; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = t;
    g.AddVertex(rec);
    if (v > 0) {
      EdgeRecord e;
      e.src = v - 1;
      e.label = next;
      e.dst = v;
      g.AddEdge(e);
    }
  }
  ASSERT_TRUE((*cluster)->Load(g).ok());

  GTravel travel(catalog);
  travel.v({0});
  for (int i = 0; i < 30; i++) travel.e("next");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  auto result = (*cluster)->Run(*plan, EngineMode::kSync);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->vids, std::vector<VertexId>{30});
}

TEST(EngineExtrasTest, AbortedTravelTombstonesDropLateTraffic) {
  // After a failure-triggered abort, late kTraverse messages for the dead
  // travel must not resurrect zombie state.
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.exec_timeout_ms = 150;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = TwoColorGraph(catalog);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  // Delay every frontier hand-off beyond the failure timeout.
  (*cluster)->inproc_transport()->SetFaultHook([](const rpc::Message& m) {
    if (m.type == rpc::MsgType::kTraverse) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    return false;
  });

  auto client = (*cluster)->NewClient();
  RunOptions opts;
  opts.mode = EngineMode::kGraphTrek;
  opts.max_restarts = 0;
  opts.failure_timeout_ms = 150;
  auto travel = client->Submit(*GTravel(catalog).v({1}).e("run").Build(), opts);
  ASSERT_TRUE(travel.ok());
  auto result = client->Await(*travel, 10000);
  EXPECT_FALSE(result.ok());  // timed out and aborted

  // The engine keeps functioning for fresh traversals.
  (*cluster)->inproc_transport()->SetFaultHook(nullptr);
  auto plan = GTravel(catalog).v({1}).e("run").Build();
  ASSERT_TRUE(plan.ok());
  auto fresh = (*cluster)->Run(*plan, EngineMode::kGraphTrek);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->vids.size(), 10u);
}

}  // namespace
}  // namespace gt::engine
