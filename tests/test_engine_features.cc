// Engine feature tests: status tracing + failure detection + restart,
// progress reporting, result streaming, concurrent traversals, visit
// statistics accounting and straggler behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

// Detect ThreadSanitizer on both GCC (__SANITIZE_THREAD__) and Clang
// (__has_feature) so timing-sensitive assertions can opt out.
#if defined(__SANITIZE_THREAD__)
#define GT_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GT_UNDER_TSAN 1
#endif
#endif

#include "src/engine/cluster.h"
#include "src/gen/rmat.h"
#include "src/lang/gtravel.h"

namespace gt::engine {
namespace {

using graph::Catalog;
using graph::EdgeRecord;
using graph::PropValue;
using graph::RefGraph;
using graph::VertexId;
using graph::VertexRecord;
using lang::FilterOp;
using lang::GTravel;

RefGraph ChainGraph(Catalog* catalog, uint32_t length) {
  RefGraph g;
  const auto t = catalog->Intern("N");
  const auto next = catalog->Intern("next");
  for (VertexId v = 0; v <= length; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = t;
    g.AddVertex(rec);
  }
  for (VertexId v = 0; v < length; v++) {
    EdgeRecord e;
    e.src = v;
    e.label = next;
    e.dst = v + 1;
    g.AddEdge(e);
  }
  return g;
}

RefGraph RandomishGraph(Catalog* catalog, uint64_t seed, uint32_t n, uint32_t m) {
  Rng rng(seed);
  RefGraph g;
  const auto t = catalog->Intern("N");
  const auto link = catalog->Intern("link");
  for (VertexId v = 0; v < n; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = t;
    g.AddVertex(rec);
  }
  for (uint32_t i = 0; i < m; i++) {
    EdgeRecord e;
    e.src = rng.Uniform(n);
    e.label = link;
    e.dst = rng.Uniform(n);
    g.AddEdge(e);
  }
  return g;
}

// --- result streaming ---------------------------------------------------------

TEST(EngineFeatureTest, LargeResultsStreamInChunks) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();

  // Hub with 10k leaves; the coordinator's result_chunk is 4096, so the
  // client must reassemble 3 chunks.
  RefGraph g;
  const auto t = catalog->Intern("N");
  const auto out = catalog->Intern("out");
  VertexRecord hub;
  hub.id = 0;
  hub.label = t;
  g.AddVertex(hub);
  for (VertexId v = 1; v <= 10000; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = t;
    g.AddVertex(rec);
    EdgeRecord e;
    e.src = 0;
    e.label = out;
    e.dst = v;
    g.AddEdge(e);
  }
  ASSERT_TRUE((*cluster)->Load(g).ok());

  auto plan = GTravel(catalog).v({0}).e("out").Build();
  ASSERT_TRUE(plan.ok());
  auto result = (*cluster)->Run(*plan, EngineMode::kGraphTrek);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vids.size(), 10000u);
  EXPECT_EQ(result->vids.front(), 1u);
  EXPECT_EQ(result->vids.back(), 10000u);
}

// --- failure detection + restart (paper Section IV-C) ----------------------------

TEST(EngineFeatureTest, LostExecutionIsDetectedAndReported) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.exec_timeout_ms = 300;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = RandomishGraph(catalog, 3, 60, 240);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  // Silently drop every frontier hand-off after the third: the downstream
  // executions are registered as created but never terminate.
  std::atomic<int> traverse_count{0};
  (*cluster)->inproc_transport()->SetFaultHook([&](const rpc::Message& m) {
    if (m.type != rpc::MsgType::kTraverse) return false;
    return traverse_count.fetch_add(1) >= 3;
  });

  auto client = (*cluster)->NewClient();
  GTravel travel(catalog);
  travel.v({1, 2, 3});
  for (int i = 0; i < 4; i++) travel.e("link");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());

  RunOptions opts;
  opts.mode = EngineMode::kGraphTrek;
  opts.max_restarts = 0;  // surface the failure instead of retrying
  opts.failure_timeout_ms = 300;
  auto travel_id = client->Submit(*plan, opts);
  ASSERT_TRUE(travel_id.ok());
  auto result = client->Await(*travel_id, 10000);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted()) << result.status().ToString();
}

TEST(EngineFeatureTest, ClientRestartsAfterTransientFailure) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.exec_timeout_ms = 300;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = RandomishGraph(catalog, 4, 60, 240);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  // Drop exactly one frontier hand-off; the restarted traversal runs clean.
  std::atomic<bool> dropped{false};
  (*cluster)->inproc_transport()->SetFaultHook([&](const rpc::Message& m) {
    if (m.type != rpc::MsgType::kTraverse) return false;
    return !dropped.exchange(true);
  });

  GTravel travel(catalog);
  travel.v({1, 2, 3});
  for (int i = 0; i < 3; i++) travel.e("link");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  const auto expected = lang::EvaluatePlanOnRefGraph(*plan, g, *catalog);

  auto client = (*cluster)->NewClient();
  RunOptions opts;
  opts.mode = EngineMode::kGraphTrek;
  opts.max_restarts = 2;
  opts.failure_timeout_ms = 300;
  auto result = client->Run(*plan, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->restarts, 1u);
  EXPECT_EQ(result->vids, expected);
}

// --- progress reporting -----------------------------------------------------------

TEST(EngineFeatureTest, ProgressReportsExecutionCounts) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.device.access_latency_us = 2000;  // slow traversal so we catch it live
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = RandomishGraph(catalog, 5, 150, 800);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  GTravel travel(catalog);
  travel.v({1, 2, 3, 4, 5});
  for (int i = 0; i < 4; i++) travel.e("link");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());

  auto client = (*cluster)->NewClient();
  RunOptions opts;
  opts.mode = EngineMode::kGraphTrek;
  auto travel_id = client->Submit(*plan, opts);
  ASSERT_TRUE(travel_id.ok());

  // Poll progress while the traversal runs; counts must be sane.
  bool saw_activity = false;
  for (int i = 0; i < 50; i++) {
    auto progress = client->Progress(*travel_id, /*coordinator=*/0);
    if (!progress.ok()) break;  // traversal finished and state was cleaned up
    if (progress->total_created > 0) {
      saw_activity = true;
      EXPECT_GE(progress->total_created, progress->total_terminated);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto result = client->Await(*travel_id, 60000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(saw_activity);
}

// --- concurrent traversals ---------------------------------------------------------

TEST(EngineFeatureTest, ConcurrentTraversalsAllCorrect) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = RandomishGraph(catalog, 6, 200, 1200);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  struct Job {
    lang::TraversalPlan plan;
    std::vector<VertexId> expected;
    EngineMode mode;
  };
  std::vector<Job> jobs;
  const EngineMode modes[] = {EngineMode::kSync, EngineMode::kAsyncPlain,
                              EngineMode::kGraphTrek};
  for (uint64_t i = 0; i < 9; i++) {
    GTravel travel(catalog);
    travel.v({i, i + 50, i + 100});
    for (uint64_t s = 0; s < 2 + i % 3; s++) travel.e("link");
    auto plan = travel.Build();
    ASSERT_TRUE(plan.ok());
    jobs.push_back(Job{*plan, lang::EvaluatePlanOnRefGraph(*plan, g, *catalog),
                       modes[i % 3]});
  }

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (auto& job : jobs) {
    threads.emplace_back([&cluster, &job, &failures] {
      auto client = (*cluster)->NewClient();
      RunOptions opts;
      opts.mode = job.mode;
      opts.coordinator = static_cast<ServerId>(job.plan.start_ids[0] % 4);
      auto result = client->Run(job.plan, opts);
      if (!result.ok() || result->vids != job.expected) failures++;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Regression: NewClient() used to bump a plain uint32_t counter, so threads
// creating clients concurrently (as the test above does) raced on it and
// could be handed the same endpoint id. TSan caught it; the counter is
// atomic now. Verify ids stay unique under contention.
TEST(EngineFeatureTest, ConcurrentNewClientIdsAreUnique) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<rpc::EndpointId> ids[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cluster, &ids, t] {
      for (int i = 0; i < kPerThread; i++) {
        auto client = (*cluster)->NewClient();
        ids[t].push_back(client->id());
      }
    });
  }
  for (auto& t : threads) t.join();

  std::set<rpc::EndpointId> unique;
  for (auto& v : ids) unique.insert(v.begin(), v.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads) * kPerThread);
}

// --- visit statistics (the Fig. 7 counters) ------------------------------------------

TEST(EngineFeatureTest, GraphTrekVisitCountersPartitionReceivedRequests) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = RandomishGraph(catalog, 7, 150, 1200);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  GTravel travel(catalog);
  travel.v({1});
  for (int i = 0; i < 6; i++) travel.e("link");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());

  (*cluster)->ResetStats();
  auto result = (*cluster)->Run(*plan, EngineMode::kGraphTrek);
  ASSERT_TRUE(result.ok());

  uint64_t received = 0, redundant = 0, combined = 0, real_io = 0;
  for (uint32_t s = 0; s < 4; s++) {
    auto snap = (*cluster)->server(s)->visit_stats().Read();
    received += snap.received;
    redundant += snap.redundant;
    combined += snap.combined;
    real_io += snap.real_io;
  }
  EXPECT_GT(received, 0u);
  EXPECT_GT(real_io, 0u);
  // The paper's accounting identity: the three counters partition the
  // received requests.
  EXPECT_EQ(received, redundant + combined + real_io);
  // On a deep traversal over a small graph, revisits dominate (Fig. 7).
  EXPECT_GT(redundant, real_io / 2);
}

TEST(EngineFeatureTest, AsyncPlainDoesMoreIoThanGraphTrek) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = RandomishGraph(catalog, 8, 150, 1200);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  GTravel travel(catalog);
  travel.v({1});
  for (int i = 0; i < 6; i++) travel.e("link");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());

  auto run_and_count = [&](EngineMode mode) {
    (*cluster)->ResetStats();
    auto result = (*cluster)->Run(*plan, mode);
    EXPECT_TRUE(result.ok());
    uint64_t io = 0;
    for (uint32_t s = 0; s < 4; s++) {
      io += (*cluster)->server(s)->visit_stats().Read().real_io;
    }
    return io;
  };

  const uint64_t async_io = run_and_count(EngineMode::kAsyncPlain);
  const uint64_t graphtrek_io = run_and_count(EngineMode::kGraphTrek);
  // The traversal-affiliate cache absorbs redundant visits before they hit
  // storage; plain async pays for each of them.
  EXPECT_GT(async_io, graphtrek_io);
}

// --- straggler injection ---------------------------------------------------------------

TEST(EngineFeatureTest, InjectedStragglerSlowsSyncMoreThanGraphTrek) {
#if defined(GT_UNDER_TSAN)
  // This test compares wall-clock timings; TSan's instrumentation overhead
  // swamps the injected 2 ms delays and makes the comparison meaningless.
  GTEST_SKIP() << "timing comparison is not meaningful under ThreadSanitizer";
#endif
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.device.access_latency_us = 100;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = RandomishGraph(catalog, 9, 300, 2400);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  GTravel travel(catalog);
  travel.v({1});
  for (int i = 0; i < 6; i++) travel.e("link");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());

  auto timed_run = [&](EngineMode mode) {
    auto result = (*cluster)->Run(*plan, mode);
    EXPECT_TRUE(result.ok());
    return result->elapsed_ms;
  };

  // Baseline (no straggler).
  const double sync_base = timed_run(EngineMode::kSync);
  const double gt_base = timed_run(EngineMode::kGraphTrek);

  // Straggler on server 2, steps 1 and 3: fixed 2 ms delays.
  for (int step : {1, 3}) {
    (*cluster)->straggler()->AddRule(
        StragglerRule{.server_id = 2, .step = step, .delay_us = 2000, .max_hits = 40});
  }
  const double sync_straggled = timed_run(EngineMode::kSync);
  (*cluster)->straggler()->ClearRules();
  for (int step : {1, 3}) {
    (*cluster)->straggler()->AddRule(
        StragglerRule{.server_id = 2, .step = step, .delay_us = 2000, .max_hits = 40});
  }
  const double gt_straggled = timed_run(EngineMode::kGraphTrek);
  (*cluster)->straggler()->ClearRules();

  // Both engines must feel the delay; the asynchronous engine's *relative*
  // penalty must not exceed the synchronous one's by more than noise.
  EXPECT_GT(sync_straggled, sync_base);
  const double sync_penalty = sync_straggled / sync_base;
  const double gt_penalty = gt_straggled / gt_base;
  EXPECT_LT(gt_penalty, sync_penalty * 1.5)
      << "sync " << sync_base << "->" << sync_straggled << " gt " << gt_base << "->"
      << gt_straggled;
}

// --- misc -----------------------------------------------------------------------------

TEST(EngineFeatureTest, InvalidPlanBytesRejectedAtSubmit) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  // Hand-craft a submit with garbage plan bytes.
  SubmitPayload submit;
  submit.mode = static_cast<uint8_t>(EngineMode::kGraphTrek);
  submit.plan = "not-a-plan";
  rpc::Mailbox mailbox((*cluster)->transport(), rpc::kClientIdBase + 500);
  auto reply = mailbox.Call(0, rpc::MsgType::kSubmitTraversal, submit.Encode());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, rpc::MsgType::kTraversalComplete);
  auto done = CompletePayload::Decode(reply->payload);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->ok, 0);
}

TEST(EngineFeatureTest, CacheIsCleanedUpAfterTraversal) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = RandomishGraph(catalog, 10, 100, 500);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  auto plan = GTravel(catalog).v({1, 2}).e("link").e("link").Build();
  ASSERT_TRUE(plan.ok());
  auto result = (*cluster)->Run(*plan, EngineMode::kGraphTrek);
  ASSERT_TRUE(result.ok());

  // The completion broadcast erases the travel's cache entries on every
  // server (poll briefly: the abort message is asynchronous).
  bool clean = false;
  for (int i = 0; i < 100 && !clean; i++) {
    clean = (*cluster)->server(0)->cache_size() == 0 &&
            (*cluster)->server(1)->cache_size() == 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(clean);
}

TEST(EngineFeatureTest, DeepChainTraversal) {
  // 40-hop traversal down a chain: far beyond any social-network diameter,
  // the paper's "longer traversals" scenario in miniature.
  ClusterConfig cfg;
  cfg.num_servers = 4;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  RefGraph g = ChainGraph(catalog, 64);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  GTravel travel(catalog);
  travel.v({0});
  for (int i = 0; i < 40; i++) travel.e("next");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  for (EngineMode mode :
       {EngineMode::kSync, EngineMode::kAsyncPlain, EngineMode::kGraphTrek}) {
    auto result = (*cluster)->Run(*plan, mode);
    ASSERT_TRUE(result.ok()) << EngineModeName(mode);
    EXPECT_EQ(result->vids, std::vector<VertexId>{40}) << EngineModeName(mode);
  }
}

}  // namespace
}  // namespace gt::engine
