// Engine correctness: every traversal, on every engine (Sync-GT, Async-GT,
// GraphTrek), must return exactly the vertices the reference evaluator
// computes on the staged in-memory graph. This file sweeps randomized
// graphs × plan shapes × server counts as property tests, plus targeted
// rtn()/filter/revisit scenarios.
#include <gtest/gtest.h>

#include <memory>

#include "src/engine/cluster.h"
#include "src/gen/rmat.h"
#include "src/lang/gtravel.h"

namespace gt::engine {
namespace {

using graph::Catalog;
using graph::EdgeRecord;
using graph::PropValue;
using graph::RefGraph;
using graph::VertexId;
using graph::VertexRecord;
using lang::FilterOp;
using lang::GTravel;

constexpr EngineMode kAllModes[] = {EngineMode::kSync, EngineMode::kAsyncPlain,
                                    EngineMode::kGraphTrek};

std::unique_ptr<Cluster> MakeCluster(uint32_t servers, uint32_t cache_capacity = 1 << 20) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.cache_capacity = cache_capacity;
  auto cluster = Cluster::Create(cfg);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  return std::move(*cluster);
}

// Runs the plan on all three engines and checks each against the oracle.
void ExpectAllEnginesMatchOracle(Cluster* cluster, const RefGraph& g,
                                 const lang::TraversalPlan& plan,
                                 const char* context = "") {
  const auto expected = lang::EvaluatePlanOnRefGraph(plan, g, *cluster->catalog());
  for (EngineMode mode : kAllModes) {
    auto result = cluster->Run(plan, mode);
    ASSERT_TRUE(result.ok()) << EngineModeName(mode) << " " << context << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->vids, expected)
        << EngineModeName(mode) << " " << context << ": got " << result->vids.size()
        << " results, expected " << expected.size();
  }
}

// A small random multi-label graph with int properties for filter tests.
RefGraph RandomGraph(Catalog* catalog, uint64_t seed, uint32_t num_vertices,
                     uint32_t num_edges, uint32_t num_labels) {
  Rng rng(seed);
  RefGraph g;
  const auto val_k = catalog->Intern("val");
  const auto w_k = catalog->Intern("w");
  std::vector<graph::LabelId> vlabels, elabels;
  for (uint32_t i = 0; i < num_labels; i++) {
    vlabels.push_back(catalog->Intern("VType" + std::to_string(i)));
    elabels.push_back(catalog->Intern("etype" + std::to_string(i)));
  }
  for (VertexId v = 0; v < num_vertices; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = vlabels[rng.Uniform(num_labels)];
    rec.props.Set(val_k, PropValue(static_cast<int64_t>(rng.Uniform(100))));
    g.AddVertex(std::move(rec));
  }
  for (uint32_t i = 0; i < num_edges; i++) {
    EdgeRecord e;
    e.src = rng.Uniform(num_vertices);
    e.dst = rng.Uniform(num_vertices);
    e.label = elabels[rng.Uniform(num_labels)];
    e.props.Set(w_k, PropValue(static_cast<int64_t>(rng.Uniform(100))));
    g.AddEdge(std::move(e));
  }
  return g;
}

// --- property sweep: random graphs × random plans × engines -------------------------

struct SweepCase {
  uint64_t seed;
  uint32_t servers;
  uint32_t steps;
};

class EngineEquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineEquivalenceSweep, AllEnginesMatchOracle) {
  const SweepCase& c = GetParam();
  auto cluster = MakeCluster(c.servers);
  Catalog* catalog = cluster->catalog();
  RefGraph g = RandomGraph(catalog, c.seed, /*num_vertices=*/200, /*num_edges=*/900,
                           /*num_labels=*/3);
  ASSERT_TRUE(cluster->Load(g).ok());

  Rng rng(c.seed * 7919 + c.steps);
  // Random plan: random start vertices, random edge labels per hop, and a
  // filter sprinkled on a random hop.
  std::vector<VertexId> starts;
  for (int i = 0; i < 3; i++) starts.push_back(rng.Uniform(200));

  GTravel travel(catalog);
  travel.v(starts);
  const uint32_t filtered_hop = c.steps > 0 ? rng.Uniform(c.steps) : 0;
  for (uint32_t s = 0; s < c.steps; s++) {
    travel.e("etype" + std::to_string(rng.Uniform(3)));
    if (s == filtered_hop) {
      travel.va("val", FilterOp::kRange,
                {PropValue(int64_t{10}), PropValue(int64_t{85})});
    }
  }
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExpectAllEnginesMatchOracle(cluster.get(), g, *plan, "sweep");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalenceSweep,
    ::testing::Values(SweepCase{1, 1, 2}, SweepCase{2, 2, 3}, SweepCase{3, 3, 4},
                      SweepCase{4, 4, 5}, SweepCase{5, 5, 2}, SweepCase{6, 4, 6},
                      SweepCase{7, 2, 8}, SweepCase{8, 8, 3}, SweepCase{9, 8, 5},
                      SweepCase{10, 3, 1}, SweepCase{11, 6, 4}, SweepCase{12, 4, 7}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_s" +
             std::to_string(info.param.servers) + "_h" + std::to_string(info.param.steps);
    });

// rtn() placement sweep on random graphs: rtn at the source, at an
// intermediate step and at the final step, plus double rtn.
class RtnPlacementSweep : public ::testing::TestWithParam<int> {};

TEST_P(RtnPlacementSweep, AllEnginesMatchOracle) {
  const int rtn_step = GetParam();  // 0..3, or -1 for double rtn
  auto cluster = MakeCluster(4);
  Catalog* catalog = cluster->catalog();
  RefGraph g = RandomGraph(catalog, 1234, 150, 700, 2);
  ASSERT_TRUE(cluster->Load(g).ok());

  Rng rng(99);
  std::vector<VertexId> starts;
  for (int i = 0; i < 4; i++) starts.push_back(rng.Uniform(150));

  GTravel travel(catalog);
  travel.v(starts);
  if (rtn_step == 0) travel.rtn();
  for (int s = 0; s < 3; s++) {
    travel.e("etype" + std::to_string(s % 2));
    if (rtn_step == s + 1 || rtn_step == -1) travel.rtn();
    if (s == 1) {
      travel.va("val", FilterOp::kRange, {PropValue(int64_t{5}), PropValue(int64_t{90})});
    }
  }
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  ExpectAllEnginesMatchOracle(cluster.get(), g, *plan, "rtn-placement");
}

INSTANTIATE_TEST_SUITE_P(Placements, RtnPlacementSweep, ::testing::Values(-1, 0, 1, 2, 3));

// --- targeted scenarios -----------------------------------------------------------

class EngineScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = MakeCluster(4);
    catalog_ = cluster_->catalog();
  }

  std::unique_ptr<Cluster> cluster_;
  Catalog* catalog_ = nullptr;
};

TEST_F(EngineScenarioTest, EmptyResultWhenStartMissing) {
  RefGraph g = RandomGraph(catalog_, 5, 50, 100, 2);
  ASSERT_TRUE(cluster_->Load(g).ok());
  auto plan = GTravel(catalog_).v({99999}).e("etype0").Build();
  ASSERT_TRUE(plan.ok());
  for (EngineMode mode : kAllModes) {
    auto result = cluster_->Run(*plan, mode);
    ASSERT_TRUE(result.ok()) << EngineModeName(mode);
    EXPECT_TRUE(result->vids.empty()) << EngineModeName(mode);
  }
}

TEST_F(EngineScenarioTest, ZeroHopPlanReturnsStartSet) {
  RefGraph g = RandomGraph(catalog_, 6, 50, 100, 2);
  ASSERT_TRUE(cluster_->Load(g).ok());
  auto plan = GTravel(catalog_).v({1, 2, 3, 99999}).Build();
  ASSERT_TRUE(plan.ok());
  ExpectAllEnginesMatchOracle(cluster_.get(), g, *plan, "zero-hop");
}

TEST_F(EngineScenarioTest, TypeScanStartMatchesOracle) {
  RefGraph g = RandomGraph(catalog_, 7, 120, 500, 3);
  ASSERT_TRUE(cluster_->Load(g).ok());
  auto plan = GTravel(catalog_)
                  .v()
                  .va("type", FilterOp::kEq, {PropValue("VType1")})
                  .e("etype0")
                  .e("etype1")
                  .Build();
  ASSERT_TRUE(plan.ok());
  ExpectAllEnginesMatchOracle(cluster_.get(), g, *plan, "type-scan");
}

TEST_F(EngineScenarioTest, EdgeFiltersApplyPerHop) {
  RefGraph g = RandomGraph(catalog_, 8, 100, 600, 2);
  ASSERT_TRUE(cluster_->Load(g).ok());
  auto plan = GTravel(catalog_)
                  .v({1, 5, 9})
                  .e("etype0")
                  .ea("w", FilterOp::kRange, {PropValue(int64_t{20}), PropValue(int64_t{80})})
                  .e("etype1")
                  .ea("w", FilterOp::kIn,
                      {PropValue(int64_t{1}), PropValue(int64_t{2}), PropValue(int64_t{3}),
                       PropValue(int64_t{40}), PropValue(int64_t{41}),
                       PropValue(int64_t{42}), PropValue(int64_t{77})})
                  .Build();
  ASSERT_TRUE(plan.ok());
  ExpectAllEnginesMatchOracle(cluster_.get(), g, *plan, "edge-filters");
}

TEST_F(EngineScenarioTest, RevisitsAcrossStepsWorkOnCycle) {
  // a <-> b cycle plus a tail; an N-step walk revisits vertices at different
  // steps (legal per the paper) while same-step duplicates are deduplicated.
  RefGraph g;
  const auto t = catalog_->Intern("N");
  const auto next = catalog_->Intern("next");
  for (VertexId v = 0; v < 4; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = t;
    g.AddVertex(rec);
  }
  auto edge = [&](VertexId s, VertexId d) {
    EdgeRecord e;
    e.src = s;
    e.label = next;
    e.dst = d;
    g.AddEdge(e);
  };
  edge(0, 1);
  edge(1, 0);
  edge(1, 2);
  edge(2, 3);
  ASSERT_TRUE(cluster_->Load(g).ok());

  GTravel travel(catalog_);
  travel.v({0});
  for (int i = 0; i < 6; i++) travel.e("next");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  ExpectAllEnginesMatchOracle(cluster_.get(), g, *plan, "cycle");
}

TEST_F(EngineScenarioTest, HighFanoutHubGraph) {
  // Star graph: hub -> 200 leaves -> back to hub. Stresses batch hand-offs.
  RefGraph g;
  const auto t = catalog_->Intern("N");
  const auto out = catalog_->Intern("out");
  const auto back = catalog_->Intern("back");
  VertexRecord hub;
  hub.id = 0;
  hub.label = t;
  g.AddVertex(hub);
  for (VertexId v = 1; v <= 200; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = t;
    g.AddVertex(rec);
    EdgeRecord e1;
    e1.src = 0;
    e1.label = out;
    e1.dst = v;
    g.AddEdge(e1);
    EdgeRecord e2;
    e2.src = v;
    e2.label = back;
    e2.dst = 0;
    g.AddEdge(e2);
  }
  ASSERT_TRUE(cluster_->Load(g).ok());
  auto plan = GTravel(catalog_).v({0}).e("out").rtn().e("back").e("out").Build();
  ASSERT_TRUE(plan.ok());
  ExpectAllEnginesMatchOracle(cluster_.get(), g, *plan, "hub");
}

TEST_F(EngineScenarioTest, RtnWithNoCompletingPathReturnsNothing) {
  // rtn-marked vertices whose continuation is filtered out must NOT be
  // returned ("only for those vertices whose resulting traversals reach the
  // end of the call chain").
  RefGraph g;
  const auto t = catalog_->Intern("N");
  const auto e1 = catalog_->Intern("hop");
  const auto tag_k = catalog_->Intern("tag");
  for (VertexId v = 0; v < 3; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = t;
    rec.props.Set(tag_k, PropValue(static_cast<int64_t>(v)));
    g.AddVertex(rec);
  }
  EdgeRecord ed;
  ed.src = 0;
  ed.label = e1;
  ed.dst = 1;
  g.AddEdge(ed);
  ed.src = 1;
  ed.label = e1;
  ed.dst = 2;
  g.AddEdge(ed);
  ASSERT_TRUE(cluster_->Load(g).ok());

  // rtn the middle vertex, but require the final vertex to have tag == 99
  // (nothing does).
  auto plan = GTravel(catalog_)
                  .v({0})
                  .e("hop")
                  .rtn()
                  .e("hop")
                  .va("tag", FilterOp::kEq, {PropValue(int64_t{99})})
                  .Build();
  ASSERT_TRUE(plan.ok());
  for (EngineMode mode : kAllModes) {
    auto result = cluster_->Run(*plan, mode);
    ASSERT_TRUE(result.ok()) << EngineModeName(mode);
    EXPECT_TRUE(result->vids.empty()) << EngineModeName(mode);
  }
}

TEST_F(EngineScenarioTest, SmallCacheCapacityStillCorrect) {
  // GraphTrek must stay correct when the traversal-affiliate cache is tiny
  // and evicts aggressively (recomputation, never wrong answers).
  auto cluster = MakeCluster(3, /*cache_capacity=*/16);
  Catalog* catalog = cluster->catalog();
  RefGraph g = RandomGraph(catalog, 17, 150, 900, 2);
  ASSERT_TRUE(cluster->Load(g).ok());
  GTravel travel(catalog);
  travel.v({1, 2, 3});
  for (int i = 0; i < 5; i++) travel.e("etype" + std::to_string(i % 2));
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  const auto expected = lang::EvaluatePlanOnRefGraph(*plan, g, *catalog);
  auto result = cluster->Run(*plan, EngineMode::kGraphTrek);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->vids, expected);
}

TEST_F(EngineScenarioTest, RmatGraphTraversalMatchesOracle) {
  gen::RmatConfig rcfg;
  rcfg.scale = 8;  // 256 vertices
  rcfg.avg_degree = 4;
  rcfg.attr_bytes = 16;
  gen::RmatGenerator rmat(rcfg);
  RefGraph g = rmat.Build(catalog_);
  ASSERT_TRUE(cluster_->Load(g).ok());
  GTravel travel(catalog_);
  travel.v({1});
  for (int i = 0; i < 4; i++) travel.e("link");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  ExpectAllEnginesMatchOracle(cluster_.get(), g, *plan, "rmat");
}

TEST_F(EngineScenarioTest, SequentialTraversalsOnOneClusterStayCorrect) {
  RefGraph g = RandomGraph(catalog_, 21, 120, 500, 2);
  ASSERT_TRUE(cluster_->Load(g).ok());
  for (uint64_t i = 0; i < 5; i++) {
    GTravel travel(catalog_);
    travel.v({i, i + 10, i + 20});
    travel.e("etype0").e("etype1");
    auto plan = travel.Build();
    ASSERT_TRUE(plan.ok());
    ExpectAllEnginesMatchOracle(cluster_.get(), g, *plan, "sequential");
  }
}

TEST_F(EngineScenarioTest, DifferentCoordinatorsGiveSameAnswer) {
  RefGraph g = RandomGraph(catalog_, 23, 100, 400, 2);
  ASSERT_TRUE(cluster_->Load(g).ok());
  auto plan = GTravel(catalog_).v({3, 4}).e("etype0").e("etype0").Build();
  ASSERT_TRUE(plan.ok());
  const auto expected = lang::EvaluatePlanOnRefGraph(*plan, g, *catalog_);
  for (ServerId coord = 0; coord < 4; coord++) {
    for (EngineMode mode : kAllModes) {
      auto result = cluster_->Run(*plan, mode, coord);
      ASSERT_TRUE(result.ok()) << "coord " << coord;
      EXPECT_EQ(result->vids, expected) << "coord " << coord << " " << EngineModeName(mode);
    }
  }
}

}  // namespace
}  // namespace gt::engine
