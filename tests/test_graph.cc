// Tests for the property-graph layer: property values and maps, catalog
// interning, KV key encoding (including ordering guarantees), partitioners,
// GraphStore, bulk ingest and RefGraph.
#include <gtest/gtest.h>

#include <thread>

#include "src/graph/catalog.h"
#include "src/graph/encoding.h"
#include "src/graph/graph_store.h"
#include "src/graph/ingest.h"
#include "src/graph/partitioner.h"
#include "src/graph/property.h"
#include "src/graph/ref_graph.h"
#include "tests/test_util.h"

namespace gt::graph {
namespace {

// --- PropValue -----------------------------------------------------------------

class PropValueParam : public ::testing::TestWithParam<PropValue> {};

TEST_P(PropValueParam, EncodeDecodeRoundTrip) {
  std::string buf;
  GetParam().EncodeTo(&buf);
  Decoder dec(buf);
  PropValue out;
  ASSERT_TRUE(PropValue::DecodeFrom(&dec, &out));
  EXPECT_TRUE(out == GetParam());
  EXPECT_TRUE(dec.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PropValueParam,
    ::testing::Values(PropValue(int64_t{0}), PropValue(int64_t{-12345}),
                      PropValue(int64_t{1} << 60), PropValue(3.14159),
                      PropValue(-0.0), PropValue(std::string("")),
                      PropValue(std::string("a string with spaces")),
                      PropValue(std::string(10000, 'x')),
                      PropValue(Bytes{std::string("\x00\x01\xff", 3)})));

TEST(PropValueTest, CompareNumericAcrossKinds) {
  EXPECT_EQ(PropValue(int64_t{5}).Compare(PropValue(5.0)), 0);
  EXPECT_LT(PropValue(int64_t{4}).Compare(PropValue(4.5)), 0);
  EXPECT_GT(PropValue(10.5).Compare(PropValue(int64_t{10})), 0);
}

TEST(PropValueTest, CompareStrings) {
  EXPECT_LT(PropValue("abc").Compare(PropValue("abd")), 0);
  EXPECT_EQ(PropValue("abc").Compare(PropValue("abc")), 0);
}

TEST(PropValueTest, CrossKindOrderIsTotal) {
  PropValue i(int64_t{1}), s("1"), b(Bytes{"1"});
  EXPECT_NE(i.Compare(s), 0);
  EXPECT_EQ(i.Compare(s), -s.Compare(i));
  EXPECT_NE(s.Compare(b), 0);
}

TEST(PropValueTest, TruncatedDecodingFails) {
  std::string buf;
  PropValue(std::string("hello")).EncodeTo(&buf);
  Decoder dec(buf.data(), buf.size() - 2);
  PropValue out;
  EXPECT_FALSE(PropValue::DecodeFrom(&dec, &out));
}

// --- PropMap -------------------------------------------------------------------

TEST(PropMapTest, SetAndFind) {
  PropMap m;
  m.Set(1, PropValue("v1"));
  m.Set(2, PropValue(int64_t{42}));
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(m.Find(1)->as_string(), "v1");
  EXPECT_EQ(m.Find(2)->as_int(), 42);
  EXPECT_EQ(m.Find(3), nullptr);
}

TEST(PropMapTest, SetOverwritesExistingKey) {
  PropMap m;
  m.Set(1, PropValue("old"));
  m.Set(1, PropValue("new"));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.Find(1)->as_string(), "new");
}

TEST(PropMapTest, EncodeDecodeRoundTrip) {
  PropMap m;
  m.Set(7, PropValue(int64_t{-9}));
  m.Set(1, PropValue("text"));
  m.Set(300, PropValue(2.5));
  std::string buf;
  m.EncodeTo(&buf);
  Decoder dec(buf);
  PropMap out;
  ASSERT_TRUE(PropMap::DecodeFrom(&dec, &out));
  EXPECT_TRUE(out == m);
}

TEST(PropMapTest, EmptyMapRoundTrip) {
  PropMap m;
  std::string buf;
  m.EncodeTo(&buf);
  Decoder dec(buf);
  PropMap out;
  ASSERT_TRUE(PropMap::DecodeFrom(&dec, &out));
  EXPECT_TRUE(out.empty());
}

// --- Catalog -------------------------------------------------------------------

TEST(CatalogTest, InternIsIdempotent) {
  Catalog cat;
  const auto a = cat.Intern("run");
  const auto b = cat.Intern("read");
  EXPECT_NE(a, b);
  EXPECT_EQ(cat.Intern("run"), a);
  EXPECT_EQ(cat.size(), 2u);
}

TEST(CatalogTest, LookupWithoutInternReturnsInvalid) {
  Catalog cat;
  EXPECT_EQ(cat.Lookup("never"), Catalog::kInvalidId);
  cat.Intern("present");
  EXPECT_NE(cat.Lookup("present"), Catalog::kInvalidId);
}

TEST(CatalogTest, NameReverseLookup) {
  Catalog cat;
  const auto id = cat.Intern("hasExecutions");
  auto name = cat.Name(id);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "hasExecutions");
  EXPECT_FALSE(cat.Name(9999).ok());
}

TEST(CatalogTest, ConcurrentInterningIsConsistent) {
  Catalog cat;
  std::vector<std::thread> threads;
  std::vector<std::vector<Catalog::Id>> ids(4);
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&cat, &ids, t] {
      for (int i = 0; i < 100; i++) {
        ids[t].push_back(cat.Intern("label-" + std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 100; i++) {
    for (int t = 1; t < 4; t++) EXPECT_EQ(ids[t][i], ids[0][i]);
  }
  EXPECT_EQ(cat.size(), 100u);
}

TEST(CatalogTest, CopyFromReplicatesMapping) {
  Catalog source;
  const auto a = source.Intern("run");
  const auto b = source.Intern("read");
  Catalog replica;
  replica.CopyFrom(source);
  EXPECT_EQ(replica.Lookup("run"), a);
  EXPECT_EQ(replica.Lookup("read"), b);
  EXPECT_EQ(replica.size(), 2u);
  // Copying again after growth only appends the new names.
  source.Intern("write");
  replica.CopyFrom(source);
  EXPECT_EQ(replica.Lookup("write"), source.Lookup("write"));
  EXPECT_EQ(replica.size(), 3u);
}

// --- Key encoding -----------------------------------------------------------------

TEST(EncodingTest, VertexKeyRoundTrip) {
  const std::string key = VertexKey(0x1122334455667788ull);
  VertexId vid = 0;
  ASSERT_TRUE(ParseVertexKey(key, &vid));
  EXPECT_EQ(vid, 0x1122334455667788ull);
}

TEST(EncodingTest, EdgeKeyRoundTrip) {
  const std::string key = EdgeKey(10, 3, 99);
  VertexId src, dst;
  LabelId label;
  ASSERT_TRUE(ParseEdgeKey(key, &src, &label, &dst));
  EXPECT_EQ(src, 10u);
  EXPECT_EQ(label, 3u);
  EXPECT_EQ(dst, 99u);
}

TEST(EncodingTest, TypeIndexKeyRoundTrip) {
  const std::string key = TypeIndexKey(5, 123456789ull);
  LabelId label;
  VertexId vid;
  ASSERT_TRUE(ParseTypeIndexKey(key, &label, &vid));
  EXPECT_EQ(label, 5u);
  EXPECT_EQ(vid, 123456789ull);
}

TEST(EncodingTest, ParsersRejectWrongNamespaceOrLength) {
  VertexId vid;
  EXPECT_FALSE(ParseVertexKey(EdgeKey(1, 2, 3), &vid));
  EXPECT_FALSE(ParseVertexKey("short", &vid));
  VertexId src, dst;
  LabelId label;
  EXPECT_FALSE(ParseEdgeKey(VertexKey(1), &src, &label, &dst));
}

TEST(EncodingTest, EdgesOfOneVertexGroupByLabelInKeyOrder) {
  // The storage-layout property the paper relies on: all edges of a vertex
  // sort together, grouped by edge type, so type scans are sequential.
  std::vector<std::string> keys = {
      EdgeKey(5, 1, 100), EdgeKey(5, 1, 2),  EdgeKey(5, 2, 1),
      EdgeKey(5, 0, 999), EdgeKey(4, 9, 0),  EdgeKey(6, 0, 0),
  };
  std::sort(keys.begin(), keys.end());
  // All vertex-5 edges are contiguous.
  VertexId src, dst;
  LabelId label;
  std::vector<std::pair<VertexId, LabelId>> order;
  for (const auto& k : keys) {
    ASSERT_TRUE(ParseEdgeKey(k, &src, &label, &dst));
    order.emplace_back(src, label);
  }
  EXPECT_EQ(order, (std::vector<std::pair<VertexId, LabelId>>{
                       {4, 9}, {5, 0}, {5, 1}, {5, 1}, {5, 2}, {6, 0}}));
  // And the per-(src,label) prefix covers exactly its group.
  int with_prefix = 0;
  for (const auto& k : keys) {
    if (std::string_view(k).starts_with(EdgePrefix(5, 1))) with_prefix++;
  }
  EXPECT_EQ(with_prefix, 2);
}

TEST(EncodingTest, VertexValueRoundTrip) {
  PropMap props;
  props.Set(1, PropValue("alpha"));
  const std::string value = EncodeVertexValue(42, props);
  LabelId label;
  PropMap out;
  ASSERT_TRUE(DecodeVertexValue(value, &label, &out));
  EXPECT_EQ(label, 42u);
  EXPECT_TRUE(out == props);
}

// --- Partitioners ---------------------------------------------------------------

TEST(PartitionerTest, HashPartitionerIsBalanced) {
  HashPartitioner part(8);
  std::vector<int> counts(8, 0);
  for (VertexId v = 0; v < 80000; v++) counts[part.ServerFor(v)]++;
  for (int c : counts) {
    EXPECT_GT(c, 8000);
    EXPECT_LT(c, 12000);
  }
}

TEST(PartitionerTest, HashPartitionerIsDeterministic) {
  HashPartitioner a(16), b(16);
  for (VertexId v = 0; v < 1000; v++) EXPECT_EQ(a.ServerFor(v), b.ServerFor(v));
}

TEST(PartitionerTest, ZeroServersClampedToOne) {
  HashPartitioner part(0);
  EXPECT_EQ(part.num_servers(), 1u);
  EXPECT_EQ(part.ServerFor(12345), 0u);
}

TEST(PartitionerTest, RangePartitionerSplitsContiguously) {
  RangePartitioner part(4, 99);
  EXPECT_EQ(part.ServerFor(0), 0u);
  EXPECT_EQ(part.ServerFor(99), 3u);
  EXPECT_LE(part.ServerFor(1000), 3u);  // out-of-range clamps to last
  for (VertexId v = 1; v < 100; v++) {
    EXPECT_GE(part.ServerFor(v), part.ServerFor(v - 1));
  }
}

// --- GraphStore ----------------------------------------------------------------

class GraphStoreTest : public ::testing::Test {
 protected:
  gt::testing::ScopedTempDir dir_;

  std::unique_ptr<GraphStore> OpenStore(DeviceModel* device = nullptr) {
    GraphStoreOptions opts;
    opts.device = device;
    auto store = GraphStore::Open(dir_.sub("store"), opts);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(*store);
  }
};

TEST_F(GraphStoreTest, PutAndGetVertex) {
  auto store = OpenStore();
  VertexRecord v;
  v.id = 7;
  v.label = 2;
  v.props.Set(1, PropValue("file.txt"));
  ASSERT_TRUE(store->PutVertex(v).ok());
  auto got = store->GetVertex(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->label, 2u);
  EXPECT_EQ(got->props.Find(1)->as_string(), "file.txt");
}

TEST_F(GraphStoreTest, GetMissingVertexIsNotFound) {
  auto store = OpenStore();
  EXPECT_TRUE(store->GetVertex(404).status().IsNotFound());
}

TEST_F(GraphStoreTest, ScanEdgesFiltersByLabel) {
  auto store = OpenStore();
  for (VertexId dst = 0; dst < 10; dst++) {
    EdgeRecord e;
    e.src = 1;
    e.label = dst % 2;  // labels 0 and 1 interleaved
    e.dst = dst;
    ASSERT_TRUE(store->PutEdge(e).ok());
  }
  std::vector<VertexId> dsts;
  ASSERT_TRUE(store->ScanEdges(1, 1, [&](VertexId dst, const PropMap&) {
                  dsts.push_back(dst);
                  return true;
                }).ok());
  EXPECT_EQ(dsts, (std::vector<VertexId>{1, 3, 5, 7, 9}));
}

TEST_F(GraphStoreTest, ScanAllEdgesGroupsByLabel) {
  auto store = OpenStore();
  for (LabelId label : {3u, 1u, 2u}) {
    EdgeRecord e;
    e.src = 9;
    e.label = label;
    e.dst = 100 + label;
    ASSERT_TRUE(store->PutEdge(e).ok());
  }
  std::vector<LabelId> labels;
  ASSERT_TRUE(store->ScanAllEdges(9, [&](LabelId l, VertexId, const PropMap&) {
                  labels.push_back(l);
                  return true;
                }).ok());
  EXPECT_EQ(labels, (std::vector<LabelId>{1, 2, 3}));  // key order groups labels
}

TEST_F(GraphStoreTest, TypeIndexScan) {
  auto store = OpenStore();
  for (VertexId v = 0; v < 20; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = v % 4;
    ASSERT_TRUE(store->PutVertex(rec).ok());
  }
  std::vector<VertexId> vids;
  ASSERT_TRUE(store->ScanVerticesByType(2, [&](VertexId v) {
                  vids.push_back(v);
                  return true;
                }).ok());
  EXPECT_EQ(vids, (std::vector<VertexId>{2, 6, 10, 14, 18}));
}

TEST_F(GraphStoreTest, DeleteVertexRemovesRecordAndIndex) {
  auto store = OpenStore();
  VertexRecord v;
  v.id = 5;
  v.label = 1;
  ASSERT_TRUE(store->PutVertex(v).ok());
  ASSERT_TRUE(store->DeleteVertex(5).ok());
  EXPECT_TRUE(store->GetVertex(5).status().IsNotFound());
  int count = 0;
  ASSERT_TRUE(store->ScanVerticesByType(1, [&](VertexId) {
                  count++;
                  return true;
                }).ok());
  EXPECT_EQ(count, 0);
}

TEST_F(GraphStoreTest, AccessesChargeDeviceModel) {
  DeviceModel device(DeviceModelConfig{.access_latency_us = 0, .per_kib_us = 0});
  auto store = OpenStore(&device);
  VertexRecord v;
  v.id = 1;
  v.label = 0;
  ASSERT_TRUE(store->PutVertex(v).ok());
  ASSERT_TRUE(store->GetVertex(1).ok());
  ASSERT_TRUE(store->ScanEdges(1, 0, [](VertexId, const PropMap&) { return true; }).ok());
  EXPECT_EQ(device.total_accesses(), 2u);
  EXPECT_EQ(store->vertex_accesses(), 2u);
}

TEST_F(GraphStoreTest, InterceptorSeesEveryAccess) {
  class CountingInterceptor : public AccessInterceptor {
   public:
    void OnVertexAccess(uint32_t, VertexId) override { count++; }
    int count = 0;
  };
  CountingInterceptor interceptor;
  auto store = OpenStore();
  store->SetInterceptor(&interceptor);
  VertexRecord v;
  v.id = 1;
  v.label = 0;
  ASSERT_TRUE(store->PutVertex(v).ok());
  ASSERT_TRUE(store->GetVertex(1).ok());
  EXPECT_EQ(interceptor.count, 1);
}

TEST_F(GraphStoreTest, PersistsAcrossReopen) {
  {
    auto store = OpenStore();
    VertexRecord v;
    v.id = 11;
    v.label = 3;
    v.props.Set(1, PropValue(int64_t{99}));
    ASSERT_TRUE(store->PutVertex(v).ok());
    EdgeRecord e;
    e.src = 11;
    e.label = 1;
    e.dst = 12;
    ASSERT_TRUE(store->PutEdge(e).ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = OpenStore();
  auto v = store->GetVertex(11);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->props.Find(1)->as_int(), 99);
  int edges = 0;
  ASSERT_TRUE(store->ScanEdges(11, 1, [&](VertexId, const PropMap&) {
                  edges++;
                  return true;
                }).ok());
  EXPECT_EQ(edges, 1);
}

// --- Ingest + RefGraph ----------------------------------------------------------

TEST(IngestTest, RoutesVerticesAndEdgesByPartitioner) {
  gt::testing::ScopedTempDir dir;
  HashPartitioner part(3);
  std::vector<std::unique_ptr<GraphStore>> stores;
  std::vector<GraphStore*> raw;
  for (int i = 0; i < 3; i++) {
    auto s = GraphStore::Open(dir.sub("s" + std::to_string(i)), GraphStoreOptions{});
    ASSERT_TRUE(s.ok());
    raw.push_back(s->get());
    stores.push_back(std::move(*s));
  }
  GraphLoader loader(&part, raw, /*batch_records=*/8);
  for (VertexId v = 0; v < 100; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = 0;
    ASSERT_TRUE(loader.AddVertex(rec).ok());
    if (v > 0) {
      EdgeRecord e;
      e.src = v;
      e.label = 1;
      e.dst = v - 1;
      ASSERT_TRUE(loader.AddEdge(e).ok());
    }
  }
  ASSERT_TRUE(loader.Finish().ok());
  EXPECT_EQ(loader.vertices_loaded(), 100u);
  EXPECT_EQ(loader.edges_loaded(), 99u);

  // Every vertex must be on exactly the server the partitioner names.
  for (VertexId v = 0; v < 100; v++) {
    const uint32_t owner = part.ServerFor(v);
    EXPECT_TRUE(raw[owner]->GetVertex(v).ok()) << v;
    for (uint32_t other = 0; other < 3; other++) {
      if (other == owner) continue;
      EXPECT_TRUE(raw[other]->GetVertex(v).status().IsNotFound());
    }
  }
}

TEST(RefGraphTest, AdjacencyAndTypeIndex) {
  RefGraph g;
  VertexRecord u;
  u.id = 1;
  u.label = 7;
  g.AddVertex(u);
  EdgeRecord e;
  e.src = 1;
  e.label = 2;
  e.dst = 5;
  g.AddEdge(e);

  EXPECT_NE(g.FindVertex(1), nullptr);
  EXPECT_EQ(g.FindVertex(2), nullptr);
  EXPECT_EQ(g.Edges(1, 2).size(), 1u);
  EXPECT_EQ(g.Edges(1, 3).size(), 0u);
  EXPECT_EQ(g.VerticesByType(7), (std::vector<VertexId>{1}));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(RefGraphTest, DegreeStats) {
  RefGraph g;
  for (VertexId v = 0; v < 3; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = 0;
    g.AddVertex(rec);
  }
  // Four adds, two distinct (src, label, dst) keys: the repeats upsert.
  for (int i = 0; i < 4; i++) {
    EdgeRecord e;
    e.src = 0;
    e.label = 0;
    e.dst = (i % 2) + 1;
    g.AddEdge(e);
  }
  auto stats = g.OutDegreeStats();
  EXPECT_EQ(stats.min, 0u);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_NEAR(stats.mean, 2.0 / 3.0, 1e-9);
}

// The stores key edges by (src, label, dst) — a re-added edge replaces the
// stored properties. The oracle graph must agree, or the reference
// evaluator would apply filters to parallel edges the engines never see.
TEST(RefGraphTest, AddEdgeUpsertsOnSameKey) {
  RefGraph g;
  VertexRecord rec;
  rec.id = 1;
  rec.label = 0;
  g.AddVertex(rec);
  EdgeRecord e;
  e.src = 1;
  e.label = 2;
  e.dst = 3;
  e.props.Set(5, PropValue(static_cast<int64_t>(10)));
  g.AddEdge(e);
  EdgeRecord again = e;
  again.props = PropMap();
  again.props.Set(5, PropValue(static_cast<int64_t>(20)));
  g.AddEdge(std::move(again));

  ASSERT_EQ(g.Edges(1, 2).size(), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
  const PropValue* v = g.Edges(1, 2)[0].second.Find(5);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, PropValue(static_cast<int64_t>(20)));
}

}  // namespace
}  // namespace gt::graph
