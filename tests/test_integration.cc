// End-to-end integration tests on the synthetic Darshan rich-metadata graph:
// the paper's data-auditing and provenance queries, run through the full
// stack (generator -> ingest -> KV -> engines) and checked against the
// reference evaluator; plus generator invariants and persistence.
#include <gtest/gtest.h>

#include "src/engine/cluster.h"
#include "src/gen/darshan.h"
#include "src/gen/rmat.h"
#include "src/lang/gtravel.h"
#include "tests/test_util.h"

namespace gt::engine {
namespace {

using graph::Catalog;
using graph::PropValue;
using graph::RefGraph;
using graph::VertexId;
using lang::FilterOp;
using lang::GTravel;

class DarshanIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_servers = 4;
    auto cluster = Cluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(*cluster);

    gen::DarshanConfig dcfg;
    dcfg.users = 24;
    dcfg.files = 1024;
    dcfg.seed = 11;
    gen_ = std::make_unique<gen::DarshanGenerator>(dcfg);
    graph_ = gen_->Build(cluster_->catalog());
    ASSERT_TRUE(cluster_->Load(graph_).ok());
  }

  void ExpectAllEnginesMatch(const lang::TraversalPlan& plan) {
    const auto expected =
        lang::EvaluatePlanOnRefGraph(plan, graph_, *cluster_->catalog());
    for (EngineMode mode :
         {EngineMode::kSync, EngineMode::kAsyncPlain, EngineMode::kGraphTrek}) {
      auto result = cluster_->Run(plan, mode);
      ASSERT_TRUE(result.ok()) << EngineModeName(mode) << ": "
                               << result.status().ToString();
      EXPECT_EQ(result->vids, expected) << EngineModeName(mode);
    }
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<gen::DarshanGenerator> gen_;
  RefGraph graph_;
};

TEST_F(DarshanIntegrationTest, GeneratorMatchesSchemaCounts) {
  const auto& stats = gen_->stats();
  EXPECT_EQ(stats.users, 24u);
  EXPECT_EQ(stats.files, 1024u);
  EXPECT_GT(stats.jobs, 0u);
  EXPECT_GE(stats.executions, stats.jobs);  // >= 1 execution per job
  EXPECT_GT(stats.edges, stats.executions); // each execution has >= 2 edges
  EXPECT_EQ(graph_.num_vertices(), stats.users + stats.files + stats.jobs + stats.executions);
  EXPECT_EQ(graph_.num_edges(), stats.edges);
}

TEST_F(DarshanIntegrationTest, FilePopularityIsSkewed) {
  // Zipf popularity: the hottest decile of files receives a majority of the
  // incoming read/readBy/write/exe edges.
  Catalog* cat = cluster_->catalog();
  const auto read_by = cat->Lookup("readBy");
  ASSERT_NE(read_by, Catalog::kInvalidId);
  uint64_t hot = 0, total = 0;
  for (uint32_t f = 0; f < 1024; f++) {
    const auto deg = graph_.Edges(gen_->FileVid(f), read_by).size();
    total += deg;
    if (f < 102) hot += deg;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.5);
}

TEST_F(DarshanIntegrationTest, PaperDataAuditQuery) {
  // "Find files read by a specific user during a given timeframe":
  // v(user).e(run).ea(ts RANGE).e(hasExecutions).e(read).rtn()
  gen::DarshanConfig dcfg = gen_->config();
  auto plan = GTravel(cluster_->catalog())
                  .v({gen_->UserVid(3)})
                  .e("run")
                  .ea("ts", FilterOp::kRange,
                      {PropValue(dcfg.ts_begin), PropValue((dcfg.ts_begin + dcfg.ts_end) / 2)})
                  .e("hasExecutions")
                  .e("read")
                  .rtn()
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExpectAllEnginesMatch(*plan);
}

TEST_F(DarshanIntegrationTest, PaperSuspiciousUserQuery) {
  // Table III query: outputs of executions that read files written by a
  // suspect user's executions.
  // v(user).e(run).ea(ts RANGE).e(hasExecutions).e(write).e(readBy).e(write).rtn()
  gen::DarshanConfig dcfg = gen_->config();
  auto plan = GTravel(cluster_->catalog())
                  .v({gen_->UserVid(1)})
                  .e("run")
                  .ea("ts", FilterOp::kRange,
                      {PropValue(dcfg.ts_begin), PropValue(dcfg.ts_end)})
                  .e("hasExecutions")
                  .e("write")
                  .e("readBy")
                  .e("write")
                  .rtn()
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExpectAllEnginesMatch(*plan);
}

TEST_F(DarshanIntegrationTest, PaperProvenanceQueryWithSourceRtn) {
  // "Find the executions whose inputs have a given property" — rtn() on the
  // source executions (paper Section III-A2 shape).
  auto plan = GTravel(cluster_->catalog())
                  .v()
                  .va("type", FilterOp::kEq, {PropValue("Execution")})
                  .rtn()
                  .e("read")
                  .va("name", FilterOp::kEq, {PropValue("/proj/data/file-7.txt")})
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExpectAllEnginesMatch(*plan);
}

TEST_F(DarshanIntegrationTest, TextFileAuditWithVertexFilter) {
  // Name-suffix flavour of the audit: only .txt files (modeled with an IN
  // filter over candidate names since the language has no suffix operator).
  auto plan = GTravel(cluster_->catalog())
                  .v({gen_->UserVid(2)})
                  .e("run")
                  .e("hasExecutions")
                  .e("read")
                  .va("name", FilterOp::kIn,
                      {PropValue("/proj/data/file-0.txt"), PropValue("/proj/data/file-7.txt"),
                       PropValue("/proj/data/file-14.txt"),
                       PropValue("/proj/data/file-21.txt")})
                  .rtn()
                  .Build();
  ASSERT_TRUE(plan.ok());
  ExpectAllEnginesMatch(*plan);
}

TEST_F(DarshanIntegrationTest, AllUsersAuditSweep) {
  // Run the 3-hop audit for several users to exercise varied fanouts.
  for (uint32_t u = 0; u < 8; u++) {
    auto plan = GTravel(cluster_->catalog())
                    .v({gen_->UserVid(u)})
                    .e("run")
                    .e("hasExecutions")
                    .e("read")
                    .Build();
    ASSERT_TRUE(plan.ok());
    const auto expected =
        lang::EvaluatePlanOnRefGraph(*plan, graph_, *cluster_->catalog());
    auto result = cluster_->Run(*plan, EngineMode::kGraphTrek);
    ASSERT_TRUE(result.ok()) << "user " << u;
    EXPECT_EQ(result->vids, expected) << "user " << u;
  }
}

// --- persistence through the full stack --------------------------------------------

TEST(PersistenceIntegrationTest, ClusterDataSurvivesRestart) {
  gt::testing::ScopedTempDir dir;
  Catalog catalog_template;  // catalogs are rebuilt identically (same order)

  std::vector<VertexId> expected;
  {
    ClusterConfig cfg;
    cfg.num_servers = 3;
    cfg.data_dir = dir.sub("cluster");
    auto cluster = Cluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    gen::DarshanConfig dcfg;
    dcfg.users = 8;
    dcfg.files = 128;
    gen::DarshanGenerator generator(dcfg);
    RefGraph g = generator.Build((*cluster)->catalog());
    ASSERT_TRUE((*cluster)->Load(g).ok());

    auto plan = GTravel((*cluster)->catalog())
                    .v({generator.UserVid(1)})
                    .e("run")
                    .e("hasExecutions")
                    .e("read")
                    .Build();
    ASSERT_TRUE(plan.ok());
    auto result = (*cluster)->Run(*plan, EngineMode::kGraphTrek);
    ASSERT_TRUE(result.ok());
    expected = result->vids;
    (*cluster)->Stop();
  }
  {
    // Reopen the same data directory: stores recover from their table files
    // and WALs; the catalog re-interns the same names in the same order.
    ClusterConfig cfg;
    cfg.num_servers = 3;
    cfg.data_dir = dir.sub("cluster");
    auto cluster = Cluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    gen::DarshanConfig dcfg;
    dcfg.users = 8;
    dcfg.files = 128;
    gen::DarshanGenerator generator(dcfg);
    generator.Build((*cluster)->catalog());  // rebuild catalog ids only

    auto plan = GTravel((*cluster)->catalog())
                    .v({generator.UserVid(1)})
                    .e("run")
                    .e("hasExecutions")
                    .e("read")
                    .Build();
    ASSERT_TRUE(plan.ok());
    auto result = (*cluster)->Run(*plan, EngineMode::kGraphTrek);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->vids, expected);
  }
}

// --- RMAT generator invariants --------------------------------------------------------

TEST(RmatGeneratorTest, ProducesRequestedScale) {
  Catalog cat;
  gen::RmatConfig cfg;
  cfg.scale = 10;
  cfg.avg_degree = 8;
  cfg.attr_bytes = 32;
  gen::RmatGenerator rmat(cfg);
  RefGraph g = rmat.Build(&cat);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 1024u * 8u);
  auto stats = g.OutDegreeStats();
  EXPECT_NEAR(stats.mean, 8.0, 0.01);
}

TEST(RmatGeneratorTest, SkewedParametersProducePowerLawDegrees) {
  Catalog cat;
  gen::RmatConfig cfg;
  cfg.scale = 12;
  cfg.avg_degree = 16;
  cfg.attr_bytes = 0;
  gen::RmatGenerator rmat(cfg);
  RefGraph g = rmat.Build(&cat);
  auto stats = g.OutDegreeStats();
  // RMAT-1 parameters (a=.45) concentrate edges on low-id vertices: the max
  // degree far exceeds the mean.
  EXPECT_GT(stats.max, static_cast<uint64_t>(stats.mean * 5));
  EXPECT_EQ(stats.min, 0u);
}

TEST(RmatGeneratorTest, DeterministicForSeed) {
  Catalog cat1, cat2;
  gen::RmatConfig cfg;
  cfg.scale = 8;
  cfg.avg_degree = 4;
  gen::RmatGenerator a(cfg), b(cfg);
  RefGraph ga = a.Build(&cat1);
  RefGraph gb = b.Build(&cat2);
  EXPECT_EQ(ga.num_edges(), gb.num_edges());
  const auto link1 = cat1.Lookup("link");
  const auto link2 = cat2.Lookup("link");
  for (VertexId v = 0; v < 256; v += 17) {
    EXPECT_EQ(ga.Edges(v, link1).size(), gb.Edges(v, link2).size()) << v;
  }
}

TEST(RmatGeneratorTest, AttributesHaveConfiguredSize) {
  Catalog cat;
  gen::RmatConfig cfg;
  cfg.scale = 6;
  cfg.avg_degree = 2;
  cfg.attr_bytes = 128;  // the paper's attribute size
  gen::RmatGenerator rmat(cfg);
  RefGraph g = rmat.Build(&cat);
  const auto attr = cat.Lookup("attr");
  const auto* v = g.FindVertex(0);
  ASSERT_NE(v, nullptr);
  const auto* a = v->props.Find(attr);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->as_string().size(), 128u);
}

TEST(DarshanGeneratorTest, DeterministicForSeed) {
  Catalog cat1, cat2;
  gen::DarshanConfig cfg;
  cfg.users = 8;
  cfg.files = 64;
  gen::DarshanGenerator a(cfg), b(cfg);
  RefGraph ga = a.Build(&cat1);
  RefGraph gb = b.Build(&cat2);
  EXPECT_EQ(ga.num_vertices(), gb.num_vertices());
  EXPECT_EQ(ga.num_edges(), gb.num_edges());
  EXPECT_EQ(a.stats().jobs, b.stats().jobs);
}

}  // namespace
}  // namespace gt::engine
