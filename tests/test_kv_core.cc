// Unit tests for the KV building blocks: Slice, Arena, SkipList, MemTable,
// WriteBatch, WAL, bloom filter, block format and the LRU block cache.
#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <set>
#include <thread>

#include "src/common/rng.h"
#include "src/common/arena.h"
#include "src/kv/block.h"
#include "src/kv/bloom.h"
#include "src/kv/dbformat.h"
#include "src/kv/lru_cache.h"
#include "src/kv/memtable.h"
#include "src/kv/skiplist.h"
#include "src/kv/wal.h"
#include "src/kv/write_batch.h"
#include "tests/test_util.h"

namespace gt::kv {
namespace {

// --- Slice -------------------------------------------------------------------

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Shorter strings order before their extensions.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
}

TEST(SliceTest, StartsWithAndRemovePrefix) {
  Slice s("graphtrek");
  EXPECT_TRUE(s.starts_with("graph"));
  EXPECT_FALSE(s.starts_with("trek"));
  s.remove_prefix(5);
  EXPECT_EQ(s.ToString(), "trek");
}

TEST(SliceTest, EmbeddedNulBytesCompareCorrectly) {
  const std::string a("a\0b", 3), b("a\0c", 3);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a), Slice(std::string("a\0b", 3)));
}

// --- Arena -------------------------------------------------------------------

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena;
  char* a = arena.Allocate(100);
  char* b = arena.Allocate(100);
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  EXPECT_EQ(static_cast<unsigned char>(a[99]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xBB);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena;
  char* big = arena.Allocate(Arena::kDefaultBlockSize);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, Arena::kDefaultBlockSize);
  EXPECT_GE(arena.MemoryUsage(), Arena::kDefaultBlockSize);
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena;
  arena.Allocate(3);  // misalign the bump pointer
  char* p = arena.AllocateAligned(64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
}

// --- SkipList ------------------------------------------------------------------

struct IntCmp {
  int operator()(uint64_t a, uint64_t b) const { return a < b ? -1 : (a > b ? 1 : 0); }
};

TEST(SkipListTest, InsertAndContains) {
  Arena arena;
  SkipList<uint64_t, IntCmp> list(IntCmp{}, &arena);
  for (uint64_t v : {5u, 1u, 9u, 3u, 7u}) list.Insert(v);
  EXPECT_TRUE(list.Contains(5));
  EXPECT_TRUE(list.Contains(1));
  EXPECT_FALSE(list.Contains(2));
}

TEST(SkipListTest, IterationIsSorted) {
  Arena arena;
  SkipList<uint64_t, IntCmp> list(IntCmp{}, &arena);
  Rng rng(3);
  std::set<uint64_t> expected;
  for (int i = 0; i < 500; i++) {
    const uint64_t v = rng.Next();
    if (expected.insert(v).second) list.Insert(v);
  }
  SkipList<uint64_t, IntCmp>::Iterator it(&list);
  it.SeekToFirst();
  for (uint64_t v : expected) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, SeekFindsFirstGreaterOrEqual) {
  Arena arena;
  SkipList<uint64_t, IntCmp> list(IntCmp{}, &arena);
  for (uint64_t v : {10u, 20u, 30u}) list.Insert(v);
  SkipList<uint64_t, IntCmp>::Iterator it(&list);
  it.Seek(15);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 20u);
  it.Seek(30);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30u);
  it.Seek(31);
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, ConcurrentReadersDuringInsert) {
  Arena arena;
  SkipList<uint64_t, IntCmp> list(IntCmp{}, &arena);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      SkipList<uint64_t, IntCmp>::Iterator it(&list);
      it.SeekToFirst();
      uint64_t prev = 0;
      bool first = true;
      while (it.Valid()) {
        if (!first) EXPECT_GT(it.key(), prev);  // ordering invariant holds mid-insert
        prev = it.key();
        first = false;
        it.Next();
      }
    }
  });
  for (uint64_t i = 0; i < 20000; i++) list.Insert(i * 2 + 1);
  stop = true;
  reader.join();
  EXPECT_TRUE(list.Contains(39999));
}

// --- Internal key format --------------------------------------------------------

TEST(DbFormatTest, InternalKeyRoundTrip) {
  std::string ikey;
  AppendInternalKey(&ikey, "user-key", 42, kTypeValue);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "user-key");
  EXPECT_EQ(parsed.sequence, 42u);
  EXPECT_EQ(parsed.type, kTypeValue);
}

TEST(DbFormatTest, ComparatorOrdersUserKeyAscThenSeqDesc) {
  InternalKeyComparator cmp;
  std::string a, b, c;
  AppendInternalKey(&a, "aaa", 5, kTypeValue);
  AppendInternalKey(&b, "aaa", 9, kTypeValue);  // newer version of same key
  AppendInternalKey(&c, "bbb", 1, kTypeValue);
  EXPECT_GT(cmp.Compare(a, b), 0);  // higher sequence sorts first
  EXPECT_LT(cmp.Compare(b, a), 0);
  EXPECT_LT(cmp.Compare(a, c), 0);  // user key dominates
}

TEST(DbFormatTest, RejectsTruncatedKeys) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
}

// --- MemTable ---------------------------------------------------------------------

TEST(MemTableTest, AddThenGet) {
  MemTable mem;
  mem.Add(1, kTypeValue, "key1", "value1");
  std::string value;
  Status st;
  ASSERT_TRUE(mem.Get(LookupKey("key1", kMaxSequenceNumber), &value, &st));
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(value, "value1");
}

TEST(MemTableTest, NewerVersionShadowsOlder) {
  MemTable mem;
  mem.Add(1, kTypeValue, "k", "old");
  mem.Add(2, kTypeValue, "k", "new");
  std::string value;
  Status st;
  ASSERT_TRUE(mem.Get(LookupKey("k", kMaxSequenceNumber), &value, &st));
  EXPECT_EQ(value, "new");
}

TEST(MemTableTest, TombstoneReportsNotFound) {
  MemTable mem;
  mem.Add(1, kTypeValue, "k", "v");
  mem.Add(2, kTypeDeletion, "k", "");
  std::string value;
  Status st;
  ASSERT_TRUE(mem.Get(LookupKey("k", kMaxSequenceNumber), &value, &st));
  EXPECT_TRUE(st.IsNotFound());
}

TEST(MemTableTest, MissingKeyReturnsFalse) {
  MemTable mem;
  mem.Add(1, kTypeValue, "a", "v");
  std::string value;
  Status st;
  EXPECT_FALSE(mem.Get(LookupKey("b", kMaxSequenceNumber), &value, &st));
}

TEST(MemTableTest, IteratorYieldsInternalKeyOrder) {
  MemTable mem;
  mem.Add(1, kTypeValue, "b", "1");
  mem.Add(2, kTypeValue, "a", "2");
  mem.Add(3, kTypeValue, "c", "3");
  auto it = mem.NewIterator();
  std::vector<std::string> keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    keys.push_back(ExtractUserKey(it->key()).ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MemTableTest, EmptyDetection) {
  MemTable mem;
  EXPECT_TRUE(mem.empty());
  mem.Add(1, kTypeValue, "k", "v");
  EXPECT_FALSE(mem.empty());
}

TEST(MemTableTest, MemoryUsageGrows) {
  MemTable mem;
  const size_t before = mem.ApproximateMemoryUsage();
  for (int i = 0; i < 100; i++) {
    mem.Add(static_cast<SequenceNumber>(i), kTypeValue, "key" + std::to_string(i),
            std::string(100, 'v'));
  }
  EXPECT_GT(mem.ApproximateMemoryUsage(), before + 100 * 100);
}

// --- WriteBatch -----------------------------------------------------------------

TEST(WriteBatchTest, CountsOperations) {
  WriteBatch batch;
  EXPECT_EQ(batch.Count(), 0u);
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  EXPECT_EQ(batch.Count(), 3u);
}

TEST(WriteBatchTest, IterateReplaysInOrder) {
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Delete("y");
  std::vector<std::pair<int, std::string>> ops;
  ASSERT_TRUE(batch
                  .Iterate([&](ValueType t, Slice k, Slice) {
                    ops.emplace_back(static_cast<int>(t), k.ToString());
                  })
                  .ok());
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], std::make_pair(static_cast<int>(kTypeValue), std::string("x")));
  EXPECT_EQ(ops[1], std::make_pair(static_cast<int>(kTypeDeletion), std::string("y")));
}

TEST(WriteBatchTest, InsertIntoMemTableAssignsSequences) {
  WriteBatch batch;
  batch.Put("k", "v1");
  batch.Put("k", "v2");
  batch.SetSequence(10);
  MemTable mem;
  ASSERT_TRUE(batch.InsertInto(&mem).ok());
  std::string value;
  Status st;
  ASSERT_TRUE(mem.Get(LookupKey("k", kMaxSequenceNumber), &value, &st));
  EXPECT_EQ(value, "v2");  // seq 11 shadows seq 10
}

TEST(WriteBatchTest, FromRepValidates) {
  WriteBatch batch;
  batch.Put("a", "b");
  batch.SetSequence(5);
  auto parsed = WriteBatch::FromRep(batch.rep());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Count(), 1u);
  EXPECT_EQ(parsed->sequence(), 5u);

  EXPECT_FALSE(WriteBatch::FromRep(Slice("bogus")).ok());
  std::string corrupt = batch.rep();
  corrupt[corrupt.size() - 1] ^= 0x01;  // flip a byte inside the value
  // Count mismatch or malformed record must be detected.
  auto bad = WriteBatch::FromRep(corrupt + "junk");
  EXPECT_FALSE(bad.ok());
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("a", "b");
  batch.Clear();
  EXPECT_EQ(batch.Count(), 0u);
  EXPECT_EQ(batch.rep().size(), 12u);
}

// --- WAL ------------------------------------------------------------------------

TEST(WalTest, WriteAndReplayRecords) {
  gt::testing::ScopedTempDir dir;
  const std::string path = dir.sub("wal.log");
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(Env::Default()->NewWritableFile(path, &file).ok());
    WalWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("record-one").ok());
    ASSERT_TRUE(writer.AddRecord("").ok());
    ASSERT_TRUE(writer.AddRecord(std::string(5000, 'z')).ok());
  }
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok());
  WalReader reader(std::move(file));
  std::string scratch;
  Slice record;
  ASSERT_TRUE(reader.ReadRecord(&scratch, &record));
  EXPECT_EQ(record.ToString(), "record-one");
  ASSERT_TRUE(reader.ReadRecord(&scratch, &record));
  EXPECT_EQ(record.size(), 0u);
  ASSERT_TRUE(reader.ReadRecord(&scratch, &record));
  EXPECT_EQ(record.size(), 5000u);
  EXPECT_FALSE(reader.ReadRecord(&scratch, &record));
  EXPECT_TRUE(reader.status().ok());
}

TEST(WalTest, TruncatedTailIsCleanEnd) {
  gt::testing::ScopedTempDir dir;
  const std::string path = dir.sub("wal.log");
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(Env::Default()->NewWritableFile(path, &file).ok());
    WalWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("complete").ok());
    ASSERT_TRUE(writer.AddRecord("will-be-truncated").ok());
  }
  // Chop off the last few bytes (simulated crash mid-write).
  auto size = Env::Default()->FileSize(path);
  ASSERT_TRUE(size.ok());
  ::truncate(path.c_str(), static_cast<off_t>(*size - 5));

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok());
  WalReader reader(std::move(file));
  std::string scratch;
  Slice record;
  ASSERT_TRUE(reader.ReadRecord(&scratch, &record));
  EXPECT_EQ(record.ToString(), "complete");
  EXPECT_FALSE(reader.ReadRecord(&scratch, &record));
  EXPECT_TRUE(reader.status().ok()) << reader.status().ToString();
}

TEST(WalTest, CorruptFinalRecordIsTornTail) {
  // A CRC-failing *final* record is indistinguishable from a crash
  // mid-append, so it reads as a clean end of log (with the tail flagged).
  gt::testing::ScopedTempDir dir;
  const std::string path = dir.sub("wal.log");
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(Env::Default()->NewWritableFile(path, &file).ok());
    WalWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("complete").ok());
    ASSERT_TRUE(writer.AddRecord("important-data").ok());
  }
  // Flip a payload byte of the second (final) record in place. The first
  // record is 8 bytes of header + 8 bytes of payload.
  {
    FILE* f = ::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ::fseek(f, 16 + 8 + 2, SEEK_SET);
    ::fputc('X', f);
    ::fclose(f);
  }
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok());
  WalReader reader(std::move(file));
  std::string scratch;
  Slice record;
  ASSERT_TRUE(reader.ReadRecord(&scratch, &record));
  EXPECT_EQ(record.ToString(), "complete");
  EXPECT_FALSE(reader.ReadRecord(&scratch, &record));
  EXPECT_TRUE(reader.status().ok()) << reader.status().ToString();
  EXPECT_TRUE(reader.tail_dropped());
}

TEST(WalTest, CorruptMidLogRecordIsFatal) {
  // A CRC failure with more log after it cannot be a torn append; recovery
  // must refuse rather than silently skip acknowledged records.
  gt::testing::ScopedTempDir dir;
  const std::string path = dir.sub("wal.log");
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(Env::Default()->NewWritableFile(path, &file).ok());
    WalWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("important-data").ok());
    ASSERT_TRUE(writer.AddRecord("later-record").ok());
  }
  // Flip a payload byte of the *first* record in place.
  {
    FILE* f = ::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ::fseek(f, 10, SEEK_SET);
    ::fputc('X', f);
    ::fclose(f);
  }
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok());
  WalReader reader(std::move(file));
  std::string scratch;
  Slice record;
  EXPECT_FALSE(reader.ReadRecord(&scratch, &record));
  EXPECT_TRUE(reader.status().IsCorruption());
  EXPECT_FALSE(reader.tail_dropped());
}

// --- Bloom filter ----------------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; i++) keys.push_back("key-" + std::to_string(i));
  for (const auto& k : keys) builder.AddKey(k);
  const std::string filter = builder.Finish();
  for (const auto& k : keys) {
    EXPECT_TRUE(BloomMayContain(filter, k)) << k;
  }
}

class BloomFprParam : public ::testing::TestWithParam<int> {};

TEST_P(BloomFprParam, FalsePositiveRateIsBounded) {
  const int bits_per_key = GetParam();
  BloomFilterBuilder builder(bits_per_key);
  for (int i = 0; i < 2000; i++) builder.AddKey("present-" + std::to_string(i));
  const std::string filter = builder.Finish();
  int fp = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; i++) {
    if (BloomMayContain(filter, "absent-" + std::to_string(i))) fp++;
  }
  const double rate = static_cast<double>(fp) / probes;
  // Generous envelope: 10 bits/key should be ~1%, 5 bits/key ~10%.
  const double bound = bits_per_key >= 10 ? 0.03 : 0.15;
  EXPECT_LT(rate, bound) << "bits_per_key=" << bits_per_key << " rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(BitsPerKey, BloomFprParam, ::testing::Values(5, 10, 16));

TEST(BloomTest, EmptyFilterMatchesEverything) {
  EXPECT_TRUE(BloomMayContain(Slice(""), "anything"));
}

// --- Block format -------------------------------------------------------------------

std::string MakeIKey(const std::string& user_key, SequenceNumber seq = 1) {
  std::string k;
  AppendInternalKey(&k, user_key, seq, kTypeValue);
  return k;
}

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder(4);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%04d", i);
    entries[MakeIKey(buf)] = "value" + std::to_string(i);
  }
  for (const auto& [k, v] : entries) builder.Add(k, v);
  Block block(builder.Finish().ToString());

  InternalKeyComparator cmp;
  auto it = block.NewIterator(&cmp);
  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    const auto expected = entries.find(it->key().ToString());
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(it->value().ToString(), expected->second);
    n++;
  }
  EXPECT_EQ(n, entries.size());
  EXPECT_TRUE(it->status().ok());
}

TEST(BlockTest, SeekPositionsAtFirstGreaterOrEqual) {
  BlockBuilder builder(4);
  for (int i = 0; i < 50; i += 2) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    builder.Add(MakeIKey(buf), "v");
  }
  Block block(builder.Finish().ToString());
  InternalKeyComparator cmp;
  auto it = block.NewIterator(&cmp);

  it->Seek(MakeIKey("k0007", kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k0008");

  it->Seek(MakeIKey("k0048", kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k0048");

  it->Seek(MakeIKey("k9999", kMaxSequenceNumber));
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, PrefixCompressionReducesSize) {
  BlockBuilder with_restarts(16);
  BlockBuilder no_sharing(1);  // restart at every entry = no sharing
  for (int i = 0; i < 200; i++) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "common-long-prefix-%06d", i);
    with_restarts.Add(MakeIKey(buf), "v");
    no_sharing.Add(MakeIKey(buf), "v");
  }
  EXPECT_LT(with_restarts.CurrentSizeEstimate(), no_sharing.CurrentSizeEstimate());
}

TEST(BlockTest, EmptyBlockIteratesNothing) {
  BlockBuilder builder;
  Block block(builder.Finish().ToString());
  InternalKeyComparator cmp;
  auto it = block.NewIterator(&cmp);
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

// --- LRU cache -------------------------------------------------------------------------

TEST(LruCacheTest, InsertAndLookup) {
  LruCache<std::string> cache(1024, 1);
  auto key = LruCache<std::string>::MakeKey(1, 0);
  cache.Insert(key, std::make_shared<std::string>("data"), 100);
  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "data");
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(300, 1);
  const auto k1 = LruCache<int>::MakeKey(1, 1);
  const auto k2 = LruCache<int>::MakeKey(1, 2);
  const auto k3 = LruCache<int>::MakeKey(1, 3);
  cache.Insert(k1, std::make_shared<int>(1), 100);
  cache.Insert(k2, std::make_shared<int>(2), 100);
  cache.Lookup(k1);  // touch k1 so k2 is the LRU victim
  cache.Insert(k3, std::make_shared<int>(3), 150);
  EXPECT_NE(cache.Lookup(k1), nullptr);
  EXPECT_EQ(cache.Lookup(k2), nullptr);
  EXPECT_NE(cache.Lookup(k3), nullptr);
}

TEST(LruCacheTest, UsageTracksCharges) {
  LruCache<int> cache(1000, 1);
  cache.Insert(LruCache<int>::MakeKey(1, 1), std::make_shared<int>(1), 400);
  cache.Insert(LruCache<int>::MakeKey(1, 2), std::make_shared<int>(2), 500);
  EXPECT_EQ(cache.usage(), 900u);
  cache.Erase(LruCache<int>::MakeKey(1, 1));
  EXPECT_EQ(cache.usage(), 500u);
}

TEST(LruCacheTest, ReplacingKeyUpdatesValueAndCharge) {
  LruCache<int> cache(1000, 1);
  const auto k = LruCache<int>::MakeKey(2, 7);
  cache.Insert(k, std::make_shared<int>(1), 100);
  cache.Insert(k, std::make_shared<int>(2), 300);
  auto hit = cache.Lookup(k);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2);
  EXPECT_EQ(cache.usage(), 300u);
}

TEST(LruCacheTest, ConcurrentAccessIsSafe) {
  LruCache<int> cache(1 << 16, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 2000; i++) {
        const auto k = LruCache<int>::MakeKey(t, i % 64);
        if (i % 3 == 0) {
          cache.Insert(k, std::make_shared<int>(i), 64);
        } else {
          cache.Lookup(k);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

}  // namespace
}  // namespace gt::kv
