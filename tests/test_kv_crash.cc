// Crash-consistency tests for the KV store: file-name round-trips, orphan
// sweeping, manifest-based recovery (tombstone resurrection), torn-tail WAL
// tolerance, error-path temp-file cleanup, and a kill-point sweep that
// simulates power loss at every mutating file-system operation of a workload
// and checks the reopened store against a model.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/kv/crash_env.h"
#include "src/kv/db.h"
#include "src/kv/filename.h"
#include "src/kv/wal.h"
#include "tests/test_util.h"

namespace gt::kv {
namespace {

// --- Small file helpers (through Env so the tests stay POSIX-free) -----------

std::string ReadFileOrDie(const std::string& path) {
  std::unique_ptr<SequentialFile> file;
  EXPECT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok()) << path;
  std::string out;
  char buf[4096];
  Slice chunk;
  do {
    EXPECT_TRUE(file->Read(sizeof(buf), &chunk, buf).ok()) << path;
    out.append(chunk.data(), chunk.size());
  } while (chunk.size() > 0);
  return out;
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(Env::Default()->NewWritableFile(path, &file).ok()) << path;
  ASSERT_TRUE(file->Append(bytes).ok()) << path;
  ASSERT_TRUE(file->Close().ok()) << path;
}

void CopyDir(const std::string& from, const std::string& to) {
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(to).ok());
  std::vector<std::string> names;
  ASSERT_TRUE(Env::Default()->ListDir(from, &names).ok());
  for (const auto& name : names) {
    WriteFileOrDie(to + "/" + name, ReadFileOrDie(from + "/" + name));
  }
}

// Flips one byte of a file in place (via read + rewrite).
void FlipByte(const std::string& path, size_t index) {
  std::string bytes = ReadFileOrDie(path);
  ASSERT_LT(index, bytes.size());
  bytes[index] = static_cast<char>(bytes[index] ^ 0x40);
  WriteFileOrDie(path, bytes);
}

// Asserts the directory looks like a healthy store: no temp files, exactly
// the manifest CURRENT points at, and one .sst per live table.
void CheckDirInvariants(const std::string& dir, size_t num_tables) {
  std::vector<std::string> names;
  ASSERT_TRUE(Env::Default()->ListDir(dir, &names).ok());
  size_t ssts = 0, manifests = 0;
  bool current = false;
  for (const auto& name : names) {
    EXPECT_FALSE(IsTempFileName(name)) << "leaked temp file: " << name;
    uint64_t id = 0;
    if (ParseTableFileName(name, &id)) {
      ssts++;
    } else if (ParseManifestFileName(name, &id)) {
      manifests++;
    } else if (name == kCurrentFileName) {
      current = true;
    }
  }
  EXPECT_EQ(ssts, num_tables) << "stray or missing table files";
  EXPECT_EQ(manifests, 1u) << "stale manifest survived recovery";
  EXPECT_TRUE(current);
}

std::map<std::string, std::string> Dump(DB* db) {
  std::map<std::string, std::string> out;
  auto it = db->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out[it->key().ToString()] = it->value().ToString();
  }
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  return out;
}

// --- File-name round-trips ---------------------------------------------------

TEST(FilenameTest, TableNameRoundTripsAcrossTheIdRange) {
  // Ids past 999999 widen instead of truncating — round-trip the boundary.
  for (uint64_t id : {uint64_t{1}, uint64_t{42}, uint64_t{999999}, uint64_t{1000000},
                      uint64_t{1000001}, uint64_t{12345678901ULL},
                      uint64_t{18446744073709551615ULL}}) {
    const std::string name = TableFileName(id);
    uint64_t parsed = 0;
    ASSERT_TRUE(ParseTableFileName(name, &parsed)) << name;
    EXPECT_EQ(parsed, id) << name;
  }
  EXPECT_EQ(TableFileName(7), "000007.sst");
  EXPECT_EQ(TableFileName(999999), "999999.sst");
  EXPECT_EQ(TableFileName(1000000), "1000000.sst");

  uint64_t id = 0;
  EXPECT_TRUE(ParseTableFileName("000007.sst", &id));
  EXPECT_EQ(id, 7u);
  EXPECT_TRUE(ParseTableFileName("1000000.sst", &id));
  EXPECT_EQ(id, 1000000u);
  for (const std::string bad :
       {"", ".sst", "abc.sst", "123.tmp", "123.sstx", "12a4.sst", "123456789012345678901.sst",
        "99999999999999999999.sst", "wal.log", "CURRENT"}) {
    EXPECT_FALSE(ParseTableFileName(bad, &id)) << bad;
  }
}

TEST(FilenameTest, ManifestNameRoundTrips) {
  for (uint64_t n : {uint64_t{1}, uint64_t{999999}, uint64_t{1000000}}) {
    uint64_t parsed = 0;
    ASSERT_TRUE(ParseManifestFileName(ManifestFileName(n), &parsed));
    EXPECT_EQ(parsed, n);
  }
  uint64_t n = 0;
  EXPECT_FALSE(ParseManifestFileName("MANIFEST-", &n));
  EXPECT_FALSE(ParseManifestFileName("MANIFEST-abc", &n));
  EXPECT_FALSE(ParseManifestFileName("MANIFEST", &n));
  EXPECT_TRUE(IsTempFileName("000123.sst.tmp"));
  EXPECT_TRUE(IsTempFileName("CURRENT.tmp"));
  EXPECT_FALSE(IsTempFileName("000123.sst"));
}

// --- Manifest recovery -------------------------------------------------------

TEST(CrashRecoveryTest, CompactionCrashCannotResurrectTombstonedKeys) {
  // The bug this PR exists to fix: a crash after compaction installs its
  // output but before it finishes deleting the inputs used to leave a stale
  // value-bearing table on disk; glob-based recovery reloaded it and a
  // deleted key came back to life. Manifest recovery must sweep it instead.
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("db");
  DBOptions opts;
  opts.background_compaction = false;

  std::string value_table_name;
  std::string value_table_bytes;
  {
    auto db = DB::Open(dir, opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Put("k1", "v1").ok());
    ASSERT_TRUE((*db)->Put("doomed", "ghost").ok());
    ASSERT_TRUE((*db)->Flush().ok());

    // The first table holds the soon-to-be-deleted value; remember it.
    std::vector<std::string> names;
    ASSERT_TRUE(Env::Default()->ListDir(dir, &names).ok());
    for (const auto& name : names) {
      uint64_t id = 0;
      if (ParseTableFileName(name, &id)) value_table_name = name;
    }
    ASSERT_FALSE(value_table_name.empty());
    value_table_bytes = ReadFileOrDie(dir + "/" + value_table_name);

    ASSERT_TRUE((*db)->Delete("doomed").ok());
    ASSERT_TRUE((*db)->Put("k2", "v2").ok());
    ASSERT_TRUE((*db)->Flush().ok());
    ASSERT_TRUE((*db)->CompactAll().ok());  // tombstone and old value both dropped

    std::string v;
    ASSERT_TRUE((*db)->Get("doomed", &v).IsNotFound());
  }

  // Simulate the crash: the retired input file was never actually unlinked.
  WriteFileOrDie(dir + "/" + value_table_name, value_table_bytes);

  auto db = DB::Open(dir, opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string v;
  EXPECT_TRUE((*db)->Get("doomed", &v).IsNotFound()) << "tombstoned key resurrected";
  ASSERT_TRUE((*db)->Get("k1", &v).ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE((*db)->Get("k2", &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/" + value_table_name))
      << "unreferenced table survived recovery";
  EXPECT_GE((*db)->stats().orphans_swept.load(), 1u);
}

TEST(CrashRecoveryTest, LegacyDirectoryWithoutManifestBootstraps) {
  // Directories created before the manifest existed have table files but no
  // CURRENT; recovery globs them once and installs them into a new manifest.
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("db");
  DBOptions opts;
  opts.background_compaction = false;
  {
    auto db = DB::Open(dir, opts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("a", "1").ok());
    ASSERT_TRUE((*db)->Flush().ok());
    ASSERT_TRUE((*db)->Put("b", "2").ok());
  }
  // Strip the manifest chain, leaving a pre-manifest layout.
  std::vector<std::string> names;
  ASSERT_TRUE(Env::Default()->ListDir(dir, &names).ok());
  for (const auto& name : names) {
    uint64_t n = 0;
    if (name == kCurrentFileName || ParseManifestFileName(name, &n)) {
      ASSERT_TRUE(Env::Default()->RemoveFile(dir + "/" + name).ok());
    }
  }

  auto db = DB::Open(dir, opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string v;
  ASSERT_TRUE((*db)->Get("a", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE((*db)->Get("b", &v).ok());
  EXPECT_EQ(v, "2");
  EXPECT_TRUE(Env::Default()->FileExists(dir + "/" + kCurrentFileName));
  CheckDirInvariants(dir, (*db)->NumTableFiles());
}

TEST(CrashRecoveryTest, OrphanFilesAreSweptAtOpen) {
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("db");
  DBOptions opts;
  opts.background_compaction = false;
  {
    auto db = DB::Open(dir, opts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("a", "1").ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  // Plant crash leftovers: a half-written temp, an unreferenced table, and a
  // stale manifest from an interrupted rotation.
  WriteFileOrDie(dir + "/000123.sst.tmp", "half-written");
  WriteFileOrDie(dir + "/" + TableFileName(999), "not in the manifest");
  WriteFileOrDie(dir + "/" + ManifestFileName(424242), "stale rotation leftover");

  auto db = DB::Open(dir, opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/000123.sst.tmp"));
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/" + TableFileName(999)));
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/" + ManifestFileName(424242)));
  EXPECT_GE((*db)->stats().orphans_swept.load(), 3u);
  std::string v;
  ASSERT_TRUE((*db)->Get("a", &v).ok());
  EXPECT_EQ(v, "1");
  CheckDirInvariants(dir, (*db)->NumTableFiles());
}

// --- Error-path temp cleanup -------------------------------------------------

// Fails the next Append directed at a *.tmp file, then recovers — a
// transient write error, not a crash.
class FailTmpWritesEnv final : public EnvWrapper {
 public:
  explicit FailTmpWritesEnv(Env* base) : EnvWrapper(base) {}

  void FailNextTmpAppend() { armed_.store(true); }

  Status NewWritableFile(const std::string& path, std::unique_ptr<WritableFile>* out) override {
    std::unique_ptr<WritableFile> base;
    GT_RETURN_IF_ERROR(EnvWrapper::NewWritableFile(path, &base));
    *out = std::make_unique<File>(this, IsTempFileName(path), std::move(base));
    return Status::OK();
  }

 private:
  class File final : public WritableFile {
   public:
    File(FailTmpWritesEnv* env, bool is_tmp, std::unique_ptr<WritableFile> base)
        : env_(env), is_tmp_(is_tmp), base_(std::move(base)) {}
    Status Append(Slice data) override {
      bool expected = true;
      if (is_tmp_ && env_->armed_.compare_exchange_strong(expected, false)) {
        return Status::IOError("injected temp-file write failure");
      }
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override { return base_->Sync(); }
    Status Close() override { return base_->Close(); }
    uint64_t size() const override { return base_->size(); }

   private:
    FailTmpWritesEnv* env_;
    bool is_tmp_;
    std::unique_ptr<WritableFile> base_;
  };

  std::atomic<bool> armed_{false};
};

TEST(CrashRecoveryTest, FailedFlushCleansUpItsTempFile) {
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("db");
  FailTmpWritesEnv fenv(Env::Default());
  DBOptions opts;
  opts.env = &fenv;
  opts.background_compaction = false;
  auto db = DB::Open(dir, opts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("a", "1").ok());

  fenv.FailNextTmpAppend();
  EXPECT_FALSE((*db)->Flush().ok());

  std::vector<std::string> names;
  ASSERT_TRUE(Env::Default()->ListDir(dir, &names).ok());
  for (const auto& name : names) {
    EXPECT_FALSE(IsTempFileName(name)) << "failed flush leaked " << name;
  }
  // Store stays usable: the memtable still holds the data and a retry works.
  std::string v;
  ASSERT_TRUE((*db)->Get("a", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_EQ((*db)->NumTableFiles(), 1u);
}

TEST(CrashRecoveryTest, FailedCompactionCleansUpItsTempFile) {
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("db");
  FailTmpWritesEnv fenv(Env::Default());
  DBOptions opts;
  opts.env = &fenv;
  opts.background_compaction = false;
  auto db = DB::Open(dir, opts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("a", "1").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Put("b", "2").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_EQ((*db)->NumTableFiles(), 2u);

  fenv.FailNextTmpAppend();
  EXPECT_FALSE((*db)->CompactAll().ok());

  std::vector<std::string> names;
  ASSERT_TRUE(Env::Default()->ListDir(dir, &names).ok());
  for (const auto& name : names) {
    EXPECT_FALSE(IsTempFileName(name)) << "failed compaction leaked " << name;
  }
  // Inputs are untouched and a retry succeeds.
  std::string v;
  ASSERT_TRUE((*db)->Get("a", &v).ok());
  ASSERT_TRUE((*db)->Get("b", &v).ok());
  ASSERT_TRUE((*db)->CompactAll().ok());
  EXPECT_EQ((*db)->NumTableFiles(), 1u);
}

// --- Torn-tail WAL recovery at the DB level ----------------------------------

// Builds a store whose WAL holds three un-flushed records, snapshotted
// mid-run so the destructor's final flush doesn't rotate the log away.
void BuildDirWithWalRecords(const std::string& snapshot_dir,
                            gt::testing::ScopedTempDir* tmp) {
  const std::string src = tmp->sub("src");
  DBOptions opts;
  opts.background_compaction = false;
  auto db = DB::Open(src, opts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k1", "value-one").ok());
  ASSERT_TRUE((*db)->Put("k2", "value-two").ok());
  ASSERT_TRUE((*db)->Put("k3", "value-three").ok());
  CopyDir(src, snapshot_dir);
}

TEST(CrashRecoveryTest, TruncatedWalTailOpensCleanly) {
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("torn");
  BuildDirWithWalRecords(dir, &tmp);
  const std::string wal = dir + "/" + kWalFileName;
  auto size = Env::Default()->FileSize(wal);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(Env::Default()->TruncateFile(wal, *size - 5).ok());

  DBOptions opts;
  opts.background_compaction = false;
  auto db = DB::Open(dir, opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string v;
  ASSERT_TRUE((*db)->Get("k1", &v).ok());
  EXPECT_EQ(v, "value-one");
  ASSERT_TRUE((*db)->Get("k2", &v).ok());
  EXPECT_EQ(v, "value-two");
  EXPECT_TRUE((*db)->Get("k3", &v).IsNotFound()) << "torn record partially applied";
  EXPECT_EQ((*db)->stats().wal_torn_tails.load(), 1u);
}

TEST(CrashRecoveryTest, BitFlippedFinalWalRecordOpensCleanly) {
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("flipped");
  BuildDirWithWalRecords(dir, &tmp);
  const std::string wal = dir + "/" + kWalFileName;
  // The last byte of the file is inside the final record's payload.
  const std::string bytes = ReadFileOrDie(wal);
  FlipByte(wal, bytes.size() - 1);

  DBOptions opts;
  opts.background_compaction = false;
  auto db = DB::Open(dir, opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string v;
  ASSERT_TRUE((*db)->Get("k1", &v).ok());
  ASSERT_TRUE((*db)->Get("k2", &v).ok());
  EXPECT_TRUE((*db)->Get("k3", &v).IsNotFound()) << "corrupt record applied";
  EXPECT_EQ((*db)->stats().wal_torn_tails.load(), 1u);
}

TEST(CrashRecoveryTest, MidLogWalCorruptionFailsOpen) {
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("midlog");
  BuildDirWithWalRecords(dir, &tmp);
  // Byte 9 sits in the first record's payload; two intact records follow, so
  // this cannot be a torn append and recovery must refuse.
  FlipByte(dir + "/" + kWalFileName, 9);

  DBOptions opts;
  opts.background_compaction = false;
  auto db = DB::Open(dir, opts);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption()) << db.status().ToString();
}

// --- CrashFaultEnv unit behavior ---------------------------------------------

TEST(CrashFaultEnvTest, DropUnsyncedRewindsFilesAndDirectoryEntries) {
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("env");
  CrashFaultEnv fenv(Env::Default());
  ASSERT_TRUE(fenv.CreateDirIfMissing(dir).ok());

  auto write = [&](const std::string& path, const std::string& bytes, bool sync) {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(fenv.NewWritableFile(path, &f).ok());
    ASSERT_TRUE(f->Append(bytes).ok());
    if (sync) {
      ASSERT_TRUE(f->Sync().ok());
    }
    ASSERT_TRUE(f->Close().ok());
  };

  // a: synced prefix, then an un-synced suffix appended later.
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(fenv.NewWritableFile(dir + "/a", &f).ok());
    ASSERT_TRUE(f->Append("hello").ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Append(" world").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  write(dir + "/b", "data", /*sync=*/false);  // entry durable, bytes not
  write(dir + "/e", "ee", /*sync=*/true);
  ASSERT_TRUE(fenv.SyncDir(dir).ok());  // a, b, e entries now durable

  write(dir + "/c", "cc", /*sync=*/true);          // entry never dir-synced
  ASSERT_TRUE(fenv.RenameFile(dir + "/c", dir + "/d").ok());
  ASSERT_TRUE(fenv.RemoveFile(dir + "/e").ok());   // unlink never dir-synced

  fenv.CrashNow();
  ASSERT_TRUE(fenv.DropUnsynced().ok());

  EXPECT_EQ(ReadFileOrDie(dir + "/a"), "hello");  // un-synced suffix gone
  EXPECT_EQ(ReadFileOrDie(dir + "/b"), "");       // entry survives, bytes don't
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/c"));  // create undone
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/d"));  // rename undone too
  EXPECT_EQ(ReadFileOrDie(dir + "/e"), "ee");     // unlink undone
}

TEST(CrashFaultEnvTest, KillPointFailsEveryLaterMutation) {
  gt::testing::ScopedTempDir tmp;
  const std::string dir = tmp.sub("env");
  CrashFaultEnv fenv(Env::Default());
  ASSERT_TRUE(fenv.CreateDirIfMissing(dir).ok());
  fenv.ArmKillPoint(2);  // the CreateDirIfMissing above consumed one op

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fenv.NewWritableFile(dir + "/x", &f).ok());
  ASSERT_TRUE(f->Append("one").ok());  // op 3 == kill point
  EXPECT_FALSE(f->Append("two").ok());
  EXPECT_TRUE(fenv.crashed());
  EXPECT_FALSE(f->Sync().ok());
  EXPECT_FALSE(fenv.SyncDir(dir).ok());
  EXPECT_FALSE(fenv.RemoveFile(dir + "/x").ok());
  EXPECT_TRUE(f->Close().ok());  // closing an fd needs no disk write
}

// --- Kill-point sweep --------------------------------------------------------

enum class OpKind { kPut, kDelete, kBatch, kFlush, kCompact };

struct WorkOp {
  OpKind kind;
  std::vector<std::pair<std::string, std::string>> puts;
  std::vector<std::string> dels;
};

WorkOp OpPut(std::string k, std::string v) {
  return WorkOp{OpKind::kPut, {{std::move(k), std::move(v)}}, {}};
}
WorkOp OpDel(std::string k) { return WorkOp{OpKind::kDelete, {}, {std::move(k)}}; }
WorkOp OpBatch(std::vector<std::pair<std::string, std::string>> puts,
               std::vector<std::string> dels) {
  return WorkOp{OpKind::kBatch, std::move(puts), std::move(dels)};
}
WorkOp OpFlush() { return WorkOp{OpKind::kFlush, {}, {}}; }
WorkOp OpCompact() { return WorkOp{OpKind::kCompact, {}, {}}; }

Status ApplyOp(DB* db, const WorkOp& op) {
  switch (op.kind) {
    case OpKind::kPut:
      return db->Put(op.puts[0].first, op.puts[0].second);
    case OpKind::kDelete:
      return db->Delete(op.dels[0]);
    case OpKind::kBatch: {
      WriteBatch batch;
      for (const auto& [k, v] : op.puts) batch.Put(k, v);
      for (const auto& k : op.dels) batch.Delete(k);
      return db->Write(std::move(batch));
    }
    case OpKind::kFlush:
      return db->Flush();
    case OpKind::kCompact:
      return db->CompactAll();
  }
  return Status::InvalidArgument("unreachable");
}

// Expected user-visible contents after the first `n` ops.
std::map<std::string, std::string> ModelAfter(const std::vector<WorkOp>& ops, size_t n) {
  std::map<std::string, std::string> m;
  for (size_t i = 0; i < n && i < ops.size(); i++) {
    for (const auto& [k, v] : ops[i].puts) m[k] = v;
    for (const auto& k : ops[i].dels) m.erase(k);
  }
  return m;
}

// Applies ops until one fails (which must mean the env crashed). Returns the
// number of acknowledged ops.
size_t RunWorkload(DB* db, const std::vector<WorkOp>& ops, CrashFaultEnv* fenv) {
  size_t acked = 0;
  for (const auto& op : ops) {
    Status s = ApplyOp(db, op);
    if (!s.ok()) {
      EXPECT_TRUE(fenv->crashed()) << "non-crash failure: " << s.ToString();
      break;
    }
    acked++;
  }
  return acked;
}

std::vector<WorkOp> ScriptedWorkload() {
  return {
      OpPut("a", "va1"),
      OpPut("b", "vb1"),
      OpPut("c", "vc1"),
      OpFlush(),
      OpPut("b", "vb2"),
      OpDel("c"),
      OpFlush(),
      OpCompact(),  // drops c's tombstone — resurrection territory
      OpBatch({{"d", "vd1"}, {"e", "ve1"}}, {"a"}),
      OpFlush(),
      OpPut("f", "vf1"),
      OpDel("e"),
      OpFlush(),
      OpCompact(),
      OpPut("g", "vg1"),
      OpBatch({{"a", "va2"}}, {"f"}),
  };
}

// Crashes at kill point `k` of the workload, materializes the post-crash
// disk, reopens with the real env and checks that the recovered contents
// equal the model after some op count in [lo(acked), acked+1]. `min_prefix`
// maps the acked count to the oldest state recovery may legally roll back to
// (acked itself when every write is synced, 0 when none are).
void RunKillPoint(const std::string& dir, const std::vector<WorkOp>& ops, uint64_t k,
                  bool sync_wal, size_t memtable_bytes,
                  const std::function<size_t(size_t)>& min_prefix) {
  size_t acked = 0;
  CrashFaultEnv fenv(Env::Default());
  fenv.ArmKillPoint(k);
  {
    DBOptions opts;
    opts.env = &fenv;
    opts.sync_wal = sync_wal;
    opts.memtable_bytes = memtable_bytes;
    opts.background_compaction = false;
    auto db = DB::Open(dir, opts);
    if (db.ok()) {
      acked = RunWorkload(db->get(), ops, &fenv);
    } else {
      EXPECT_TRUE(fenv.crashed()) << "non-crash open failure: " << db.status().ToString();
    }
    // The destructor's final flush may also hit the kill point; that must
    // never make recovery fail, only lose un-synced tail data.
  }
  ASSERT_TRUE(fenv.DropUnsynced().ok());

  DBOptions plain;
  plain.sync_wal = sync_wal;
  plain.memtable_bytes = memtable_bytes;
  plain.background_compaction = false;
  auto db = DB::Open(dir, plain);
  ASSERT_TRUE(db.ok()) << "store unopenable after crash: " << db.status().ToString();
  const auto dump = Dump(db->get());

  const size_t lo = min_prefix(acked);
  const size_t hi = std::min(acked + 1, ops.size());
  bool matched = false;
  size_t matched_at = 0;
  for (size_t i = lo; i <= hi && !matched; i++) {
    if (dump == ModelAfter(ops, i)) {
      matched = true;
      matched_at = i;
    }
  }
  EXPECT_TRUE(matched) << "recovered state matches no op prefix in [" << lo << ", " << hi
                       << "]; acked=" << acked << " recovered_keys=" << dump.size();
  (void)matched_at;
  CheckDirInvariants(dir, (*db)->NumTableFiles());
}

void KillPointSweep(bool sync_wal) {
  gt::testing::ScopedTempDir tmp;
  const auto ops = ScriptedWorkload();
  const size_t memtable_bytes = 64 << 20;  // flush only when scripted

  // Dry run: count the workload's mutating file-system operations.
  uint64_t total_ops = 0;
  {
    CrashFaultEnv fenv(Env::Default());
    DBOptions opts;
    opts.env = &fenv;
    opts.sync_wal = sync_wal;
    opts.memtable_bytes = memtable_bytes;
    opts.background_compaction = false;
    {
      auto db = DB::Open(tmp.sub("dry"), opts);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      ASSERT_EQ(RunWorkload(db->get(), ops, &fenv), ops.size());
    }
    total_ops = fenv.op_count();
    ASSERT_FALSE(fenv.crashed());
  }

  // With sync_wal every acked op must survive exactly; without it, recovery
  // may roll back to any earlier prefix (most adversarially, the last table
  // install) but never to a state that matches no prefix at all.
  const auto min_prefix = sync_wal ? std::function<size_t(size_t)>([](size_t acked) {
    return acked;
  })
                                   : std::function<size_t(size_t)>([](size_t) {
                                       return size_t{0};
                                     });
  for (uint64_t k = 0; k <= total_ops; k++) {
    SCOPED_TRACE("kill point " + std::to_string(k) + "/" + std::to_string(total_ops));
    const std::string dir = tmp.sub("k" + std::to_string(k));
    RunKillPoint(dir, ops, k, sync_wal, memtable_bytes, min_prefix);
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure()) return;
    ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir).ok());
  }
}

TEST(CrashSweepTest, ScriptedWorkloadSurvivesEveryKillPoint) { KillPointSweep(false); }

TEST(CrashSweepTest, ScriptedWorkloadSurvivesEveryKillPointWithSyncWal) {
  KillPointSweep(true);
}

TEST(CrashSweepTest, LegacyUpgradeSurvivesEveryKillPoint) {
  // The pre-manifest upgrade must be atomic: at every kill point of the
  // first manifest-creating open, the durable directory either still looks
  // legacy (no CURRENT; the next open re-globs the tables) or has a CURRENT
  // whose manifest names every legacy table. A CURRENT that durably names an
  // empty live set would get the legacy .sst files swept as orphans — total
  // data loss.
  gt::testing::ScopedTempDir tmp;
  const std::string legacy = tmp.sub("legacy");
  DBOptions opts;
  opts.background_compaction = false;
  {
    auto db = DB::Open(legacy, opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Put("a", "1").ok());
    ASSERT_TRUE((*db)->Flush().ok());
    ASSERT_TRUE((*db)->Put("b", "2").ok());  // flushed into a table by ~DB
  }
  // Strip the manifest chain, leaving a pre-manifest layout whose data lives
  // entirely in table files.
  std::vector<std::string> names;
  ASSERT_TRUE(Env::Default()->ListDir(legacy, &names).ok());
  for (const auto& name : names) {
    uint64_t n = 0;
    if (name == kCurrentFileName || ParseManifestFileName(name, &n)) {
      ASSERT_TRUE(Env::Default()->RemoveFile(legacy + "/" + name).ok());
    }
  }

  // Dry run: count the upgrade's mutating file-system operations.
  uint64_t total_ops = 0;
  {
    const std::string dir = tmp.sub("dry");
    CopyDir(legacy, dir);
    CrashFaultEnv fenv(Env::Default());
    DBOptions copts = opts;
    copts.env = &fenv;
    {
      auto db = DB::Open(dir, copts);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
    }
    total_ops = fenv.op_count();
    ASSERT_FALSE(fenv.crashed());
  }

  for (uint64_t k = 0; k <= total_ops; k++) {
    SCOPED_TRACE("kill point " + std::to_string(k) + "/" + std::to_string(total_ops));
    const std::string dir = tmp.sub("k" + std::to_string(k));
    CopyDir(legacy, dir);
    CrashFaultEnv fenv(Env::Default());
    fenv.ArmKillPoint(k);
    {
      DBOptions copts = opts;
      copts.env = &fenv;
      auto db = DB::Open(dir, copts);
      if (!db.ok()) {
        EXPECT_TRUE(fenv.crashed()) << "non-crash open failure: " << db.status().ToString();
      }
    }
    ASSERT_TRUE(fenv.DropUnsynced().ok());

    auto db = DB::Open(dir, opts);
    ASSERT_TRUE(db.ok()) << "store unopenable after crashed upgrade: " << db.status().ToString();
    std::string v;
    ASSERT_TRUE((*db)->Get("a", &v).ok()) << "flushed data lost in crashed upgrade";
    EXPECT_EQ(v, "1");
    ASSERT_TRUE((*db)->Get("b", &v).ok()) << "flushed data lost in crashed upgrade";
    EXPECT_EQ(v, "2");
    CheckDirInvariants(dir, (*db)->NumTableFiles());
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure()) return;
    ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir).ok());
  }
}

TEST(CrashSweepTest, RandomizedWorkloadSurvivesSampledKillPoints) {
  // Same invariant, messier workload: random puts/deletes/flushes/compactions
  // with values sized to trigger automatic memtable flushes. Fixed seed so a
  // failure reproduces exactly.
  gt::testing::ScopedTempDir tmp;
  gt::Rng rng(0xC0FFEE);
  std::vector<WorkOp> ops;
  for (int i = 0; i < 50; i++) {
    const uint64_t roll = rng.Uniform(100);
    const std::string key = "key" + std::to_string(rng.Uniform(16));
    if (roll < 70) {
      ops.push_back(OpPut(key, key + "=v" + std::to_string(i) + std::string(64, 'x')));
    } else if (roll < 85) {
      ops.push_back(OpDel(key));
    } else if (roll < 95) {
      ops.push_back(OpFlush());
    } else {
      ops.push_back(OpCompact());
    }
  }
  const size_t memtable_bytes = 1024;  // force auto-flushes mid-workload

  uint64_t total_ops = 0;
  {
    CrashFaultEnv fenv(Env::Default());
    DBOptions opts;
    opts.env = &fenv;
    opts.memtable_bytes = memtable_bytes;
    opts.background_compaction = false;
    {
      auto db = DB::Open(tmp.sub("dry"), opts);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      ASSERT_EQ(RunWorkload(db->get(), ops, &fenv), ops.size());
    }
    total_ops = fenv.op_count();
  }

  const auto min_prefix = std::function<size_t(size_t)>([](size_t) { return size_t{0}; });
  const uint64_t stride = std::max<uint64_t>(1, total_ops / 40);
  for (uint64_t k = 0; k <= total_ops; k += stride) {
    SCOPED_TRACE("kill point " + std::to_string(k) + "/" + std::to_string(total_ops));
    const std::string dir = tmp.sub("r" + std::to_string(k));
    RunKillPoint(dir, ops, k, /*sync_wal=*/false, memtable_bytes, min_prefix);
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure()) return;
    ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir).ok());
  }
}

}  // namespace
}  // namespace gt::kv
