// Tests for the sorted-table files and the DB facade: persistence, WAL
// recovery, compaction, iteration and prefix scans.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/common/rng.h"
#include "src/kv/db.h"
#include "src/kv/table.h"
#include "tests/test_util.h"

namespace gt::kv {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq = 1,
                 ValueType t = kTypeValue) {
  std::string k;
  AppendInternalKey(&k, user_key, seq, t);
  return k;
}

// --- Table -------------------------------------------------------------------

class TableTest : public ::testing::Test {
 protected:
  gt::testing::ScopedTempDir dir_;

  std::shared_ptr<Table> BuildTable(const std::map<std::string, std::string>& entries,
                                    size_t block_size = 256) {
    const std::string path = dir_.sub("test.sst");
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(Env::Default()->NewWritableFile(path, &file).ok());
    TableBuilder builder(std::move(file), block_size);
    for (const auto& [k, v] : entries) {
      EXPECT_TRUE(builder.Add(IKey(k), v).ok());
    }
    EXPECT_TRUE(builder.Finish().ok());
    auto table = Table::Open(Env::Default(), path, 1, TableReadOptions{});
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    return *table;
  }
};

TEST_F(TableTest, PointLookupsAcrossManyBlocks) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%05d", i);
    entries[buf] = "value-" + std::to_string(i);
  }
  auto table = BuildTable(entries);
  EXPECT_EQ(table->num_entries(), 500u);
  for (const auto& [k, v] : entries) {
    std::string found_value;
    bool found = false;
    Status s = table->Get(IKey(k, kMaxSequenceNumber),
                          [&](const ParsedInternalKey&, Slice val) {
                            found = true;
                            found_value = val.ToString();
                          });
    ASSERT_TRUE(s.ok()) << k << ": " << s.ToString();
    ASSERT_TRUE(found) << k;
    EXPECT_EQ(found_value, v);
  }
}

TEST_F(TableTest, MissingKeysReturnNotFound) {
  auto table = BuildTable({{"b", "1"}, {"d", "2"}});
  for (const std::string k : {"a", "c", "e"}) {
    Status s = table->Get(IKey(k, kMaxSequenceNumber),
                          [&](const ParsedInternalKey&, Slice) { FAIL(); });
    EXPECT_TRUE(s.IsNotFound()) << k;
  }
}

TEST_F(TableTest, IteratorScansInOrder) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 300; i++) {
    entries["scan" + std::to_string(1000 + i)] = std::to_string(i);
  }
  auto table = BuildTable(entries);
  auto it = table->NewIterator();
  auto expected = entries.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), expected->first);
    EXPECT_EQ(it->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(TableTest, IteratorSeekLandsMidTable) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%03d", i * 2);
    entries[buf] = "v";
  }
  auto table = BuildTable(entries);
  auto it = table->NewIterator();
  it->Seek(IKey("k101", kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k102");
}

TEST_F(TableTest, MetaBlockRecordsBounds) {
  auto table = BuildTable({{"aaa", "1"}, {"mmm", "2"}, {"zzz", "3"}});
  EXPECT_EQ(ExtractUserKey(Slice(table->smallest())).ToString(), "aaa");
  EXPECT_EQ(ExtractUserKey(Slice(table->largest())).ToString(), "zzz");
}

TEST_F(TableTest, BlockCacheServesRepeatedReads) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; i++) entries["key" + std::to_string(i)] = "v";

  const std::string path = dir_.sub("cached.sst");
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(Env::Default()->NewWritableFile(path, &file).ok());
  TableBuilder builder(std::move(file), 256);
  for (const auto& [k, v] : entries) ASSERT_TRUE(builder.Add(IKey(k), v).ok());
  ASSERT_TRUE(builder.Finish().ok());

  LruCache<Block> cache(1 << 20);
  KvStats stats;
  TableReadOptions opts;
  opts.block_cache = &cache;
  opts.stats = &stats;
  auto table = Table::Open(Env::Default(), path, 7, opts);
  ASSERT_TRUE(table.ok());

  auto get = [&](const std::string& k) {
    return (*table)->Get(IKey(k, kMaxSequenceNumber), [](const ParsedInternalKey&, Slice) {});
  };
  ASSERT_TRUE(get("key0").ok());
  const uint64_t cold_reads = stats.block_reads.load();
  ASSERT_TRUE(get("key0").ok());
  EXPECT_EQ(stats.block_reads.load(), cold_reads);  // warm: no new file read
  EXPECT_GT(stats.block_cache_hits.load(), 0u);
}

TEST_F(TableTest, CorruptFooterRejected) {
  const std::string path = dir_.sub("bad.sst");
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(Env::Default()->NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("this is not a table file, far too short maybe not").ok());
  ASSERT_TRUE(file->Append(std::string(64, 'x')).ok());
  ASSERT_TRUE(file->Close().ok());
  auto table = Table::Open(Env::Default(), path, 1, TableReadOptions{});
  EXPECT_FALSE(table.ok());
}

// --- DB ------------------------------------------------------------------------

class DBTest : public ::testing::Test {
 protected:
  gt::testing::ScopedTempDir dir_;

  std::unique_ptr<DB> OpenDB(DBOptions opts = {}) {
    auto db = DB::Open(dir_.sub("db"), opts);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }
};

TEST_F(DBTest, PutGetDelete) {
  auto db = OpenDB();
  ASSERT_TRUE(db->Put("k1", "v1").ok());
  std::string value;
  ASSERT_TRUE(db->Get("k1", &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(db->Delete("k1").ok());
  EXPECT_TRUE(db->Get("k1", &value).IsNotFound());
}

TEST_F(DBTest, OverwriteKeepsNewest) {
  auto db = OpenDB();
  ASSERT_TRUE(db->Put("k", "v1").ok());
  ASSERT_TRUE(db->Put("k", "v2").ok());
  std::string value;
  ASSERT_TRUE(db->Get("k", &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST_F(DBTest, GetAfterFlushReadsFromTable) {
  auto db = OpenDB();
  ASSERT_TRUE(db->Put("persisted", "on-disk").ok());
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_GE(db->NumTableFiles(), 1u);
  std::string value;
  ASSERT_TRUE(db->Get("persisted", &value).ok());
  EXPECT_EQ(value, "on-disk");
}

TEST_F(DBTest, DeleteShadowsFlushedValue) {
  auto db = OpenDB();
  ASSERT_TRUE(db->Put("k", "v").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Delete("k").ok());
  std::string value;
  EXPECT_TRUE(db->Get("k", &value).IsNotFound());
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_TRUE(db->Get("k", &value).IsNotFound());
}

TEST_F(DBTest, ReopenRecoversFlushedData) {
  {
    auto db = OpenDB();
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(db->Put("key" + std::to_string(i), "value" + std::to_string(i)).ok());
    }
  }  // destructor flushes
  auto db = OpenDB();
  std::string value;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
}

TEST_F(DBTest, WalReplayRecoversUnflushedWrites) {
  // Write without flushing, then simulate a crash by leaking the DB's file
  // state: reopen a second handle on the same dir after dropping the first
  // without a clean flush. We emulate the crash by copying the WAL aside,
  // letting the destructor flush, then restoring the WAL into a fresh dir.
  const std::string dbdir = dir_.sub("waldb");
  {
    auto db = DB::Open(dbdir, DBOptions{});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("wal-key", "wal-value").ok());
    // Simulate crash: copy WAL before the destructor truncates it.
    std::string wal;
    {
      std::unique_ptr<SequentialFile> f;
      ASSERT_TRUE(Env::Default()->NewSequentialFile(dbdir + "/wal.log", &f).ok());
      char buf[4096];
      Slice chunk;
      while (f->Read(sizeof(buf), &chunk, buf).ok() && chunk.size() > 0) {
        wal.append(chunk.data(), chunk.size());
      }
    }
    ASSERT_GT(wal.size(), 0u);
    // Fresh directory with only the WAL present = post-crash state.
    const std::string crashdir = dir_.sub("crashdb");
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(crashdir).ok());
    std::unique_ptr<WritableFile> out;
    ASSERT_TRUE(Env::Default()->NewWritableFile(crashdir + "/wal.log", &out).ok());
    ASSERT_TRUE(out->Append(wal).ok());
    ASSERT_TRUE(out->Close().ok());

    auto recovered = DB::Open(crashdir, DBOptions{});
    ASSERT_TRUE(recovered.ok());
    std::string value;
    ASSERT_TRUE((*recovered)->Get("wal-key", &value).ok());
    EXPECT_EQ(value, "wal-value");
  }
}

TEST_F(DBTest, MemtableFlushTriggersAutomatically) {
  DBOptions opts;
  opts.memtable_bytes = 16 * 1024;
  auto db = OpenDB(opts);
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), std::string(64, 'v')).ok());
  }
  EXPECT_GE(db->stats().flushes.load(), 1u);
  std::string value;
  ASSERT_TRUE(db->Get("key0", &value).ok());
  ASSERT_TRUE(db->Get("key1999", &value).ok());
}

TEST_F(DBTest, CompactionMergesTablesAndDropsTombstones) {
  DBOptions opts;
  opts.background_compaction = false;  // drive compaction explicitly
  auto db = OpenDB(opts);
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Put("key" + std::to_string(i), "round" + std::to_string(round)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(db->Delete("key0").ok());
  EXPECT_GE(db->NumTableFiles(), 4u);
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->NumTableFiles(), 1u);

  std::string value;
  EXPECT_TRUE(db->Get("key0", &value).IsNotFound());
  ASSERT_TRUE(db->Get("key1", &value).ok());
  EXPECT_EQ(value, "round3");
}

TEST_F(DBTest, BackgroundCompactionKeepsDataReadable) {
  DBOptions opts;
  opts.memtable_bytes = 8 * 1024;
  opts.l0_compaction_trigger = 2;
  auto db = OpenDB(opts);
  Rng rng(5);
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 3000; i++) {
    const std::string k = "key" + std::to_string(rng.Uniform(500));
    const std::string v = "value" + std::to_string(i);
    truth[k] = v;
    ASSERT_TRUE(db->Put(k, v).ok());
  }
  db->WaitForCompaction();
  EXPECT_GE(db->stats().compactions.load(), 1u);
  std::string value;
  for (const auto& [k, v] : truth) {
    ASSERT_TRUE(db->Get(k, &value).ok()) << k;
    EXPECT_EQ(value, v);
  }
}

TEST_F(DBTest, IteratorSeesLiveViewAcrossMemtableAndTables) {
  auto db = OpenDB();
  ASSERT_TRUE(db->Put("a", "1").ok());
  ASSERT_TRUE(db->Put("c", "3").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put("b", "2").ok());      // memtable only
  ASSERT_TRUE(db->Put("c", "3-new").ok());  // shadows table version
  ASSERT_TRUE(db->Delete("a").ok());        // tombstone over table version

  auto it = db->NewIterator();
  std::vector<std::pair<std::string, std::string>> got;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    got.emplace_back(it->key().ToString(), it->value().ToString());
  }
  EXPECT_EQ(got, (std::vector<std::pair<std::string, std::string>>{{"b", "2"},
                                                                   {"c", "3-new"}}));
}

TEST_F(DBTest, IteratorSeekSkipsDeletedRun) {
  auto db = OpenDB();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(db->Put("k" + std::to_string(100 + i), "v").ok());
  }
  for (int i = 5; i < 15; i++) {
    ASSERT_TRUE(db->Delete("k" + std::to_string(100 + i)).ok());
  }
  auto it = db->NewIterator();
  it->Seek("k105");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k115");
}

TEST_F(DBTest, ScanPrefixVisitsExactlyMatchingKeys) {
  auto db = OpenDB();
  ASSERT_TRUE(db->Put("edge/1/a", "1").ok());
  ASSERT_TRUE(db->Put("edge/1/b", "2").ok());
  ASSERT_TRUE(db->Put("edge/2/a", "3").ok());
  ASSERT_TRUE(db->Put("vertex/1", "4").ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(db->ScanPrefix("edge/1/", [&](Slice k, Slice) {
                  keys.push_back(k.ToString());
                  return true;
                })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"edge/1/a", "edge/1/b"}));
}

TEST_F(DBTest, ScanPrefixEarlyStop) {
  auto db = OpenDB();
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Put("p/" + std::to_string(i), "v").ok());
  }
  int count = 0;
  ASSERT_TRUE(db->ScanPrefix("p/", [&](Slice, Slice) { return ++count < 3; }).ok());
  EXPECT_EQ(count, 3);
}

TEST_F(DBTest, WriteBatchIsAtomicallyVisible) {
  auto db = OpenDB();
  WriteBatch batch;
  for (int i = 0; i < 100; i++) batch.Put("batch" + std::to_string(i), "v");
  ASSERT_TRUE(db->Write(std::move(batch)).ok());
  std::string value;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Get("batch" + std::to_string(i), &value).ok());
  }
}

TEST_F(DBTest, StatsCountOperations) {
  auto db = OpenDB();
  ASSERT_TRUE(db->Put("a", "1").ok());
  std::string value;
  ASSERT_TRUE(db->Get("a", &value).ok());
  db->Get("missing", &value).ok();
  EXPECT_EQ(db->stats().puts.load(), 1u);
  EXPECT_EQ(db->stats().gets.load(), 2u);
  EXPECT_EQ(db->stats().get_hits.load(), 1u);
}

TEST_F(DBTest, ConcurrentReadersDuringWrites) {
  DBOptions opts;
  opts.memtable_bytes = 32 * 1024;
  auto db = OpenDB(opts);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put("stable" + std::to_string(i), "v").ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::thread reader([&] {
    std::string value;
    while (!stop.load()) {
      for (int i = 0; i < 200; i += 17) {
        if (!db->Get("stable" + std::to_string(i), &value).ok()) read_errors++;
      }
    }
  });
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db->Put("churn" + std::to_string(i), std::string(128, 'x')).ok());
  }
  stop = true;
  reader.join();
  EXPECT_EQ(read_errors.load(), 0);
}

TEST_F(DBTest, ReopenAfterCompactionSeesMergedState) {
  {
    DBOptions opts;
    opts.background_compaction = false;
    auto db = OpenDB(opts);
    for (int round = 0; round < 3; round++) {
      for (int i = 0; i < 30; i++) {
        ASSERT_TRUE(db->Put("k" + std::to_string(i), "r" + std::to_string(round)).ok());
      }
      ASSERT_TRUE(db->Flush().ok());
    }
    ASSERT_TRUE(db->Delete("k0").ok());
    ASSERT_TRUE(db->CompactAll().ok());
  }
  auto db = OpenDB();
  EXPECT_LE(db->NumTableFiles(), 2u);  // merged run (+ final destructor flush)
  std::string value;
  EXPECT_TRUE(db->Get("k0", &value).IsNotFound());
  ASSERT_TRUE(db->Get("k1", &value).ok());
  EXPECT_EQ(value, "r2");
}

TEST_F(DBTest, WorksWithBlockCacheDisabled) {
  DBOptions opts;
  opts.block_cache_bytes = 0;  // every read goes to the file
  auto db = OpenDB(opts);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  std::string value;
  for (int i = 0; i < 200; i += 7) {
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
  EXPECT_EQ(db->stats().block_cache_hits.load(), 0u);
  EXPECT_GT(db->stats().block_reads.load(), 0u);
}

TEST_F(DBTest, BloomDisabledStillCorrect) {
  DBOptions opts;
  opts.bloom_bits_per_key = 0;
  auto db = OpenDB(opts);
  ASSERT_TRUE(db->Put("present", "v").ok());
  ASSERT_TRUE(db->Flush().ok());
  std::string value;
  ASSERT_TRUE(db->Get("present", &value).ok());
  EXPECT_TRUE(db->Get("absent", &value).IsNotFound());
}

TEST_F(DBTest, IteratorAcrossReopenAndOverwrites) {
  {
    auto db = OpenDB();
    ASSERT_TRUE(db->Put("a", "1").ok());
    ASSERT_TRUE(db->Put("b", "2").ok());
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->Put("b", "2-new").ok());
    ASSERT_TRUE(db->Put("c", "3").ok());
  }
  auto db = OpenDB();
  auto it = db->NewIterator();
  std::vector<std::pair<std::string, std::string>> got;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    got.emplace_back(it->key().ToString(), it->value().ToString());
  }
  EXPECT_EQ(got, (std::vector<std::pair<std::string, std::string>>{
                     {"a", "1"}, {"b", "2-new"}, {"c", "3"}}));
}

TEST_F(DBTest, SequenceNumbersSurviveReopen) {
  // A put after reopen must shadow pre-reopen versions: the recovered
  // sequence counter has to resume above everything on disk.
  {
    auto db = OpenDB();
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(db->Put("k", "gen1-" + std::to_string(i)).ok());
    }
  }
  {
    auto db = OpenDB();
    ASSERT_TRUE(db->Put("k", "gen2").ok());
  }
  auto db = OpenDB();
  std::string value;
  ASSERT_TRUE(db->Get("k", &value).ok());
  EXPECT_EQ(value, "gen2");
}

TEST_F(DBTest, EmptyDatabaseIteratesNothing) {
  auto db = OpenDB();
  auto it = db->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek("anything");
  EXPECT_FALSE(it->Valid());
  std::string value;
  EXPECT_TRUE(db->Get("missing", &value).IsNotFound());
}

// --- Snapshots ----------------------------------------------------------------

TEST_F(DBTest, SnapshotHidesWritesAfterPin) {
  auto db = OpenDB();
  ASSERT_TRUE(db->Put("k", "v1").ok());
  ASSERT_TRUE(db->Put("gone", "soon").ok());
  const DB::Snapshot* snap = db->GetSnapshot();
  EXPECT_EQ(db->NumLiveSnapshots(), 1u);

  ASSERT_TRUE(db->Put("k", "v2").ok());
  ASSERT_TRUE(db->Delete("gone").ok());
  ASSERT_TRUE(db->Put("new-key", "x").ok());

  std::string value;
  ASSERT_TRUE(db->Get("k", &value, snap).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(db->Get("gone", &value, snap).ok());
  EXPECT_EQ(value, "soon");
  EXPECT_TRUE(db->Get("new-key", &value, snap).IsNotFound());
  // Live reads are unaffected.
  ASSERT_TRUE(db->Get("k", &value).ok());
  EXPECT_EQ(value, "v2");
  EXPECT_TRUE(db->Get("gone", &value).IsNotFound());

  // Iterator and prefix scan through the snapshot see the pinned view.
  auto it = db->NewIterator(snap);
  std::map<std::string, std::string> seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen[it->key().ToString()] = it->value().ToString();
  }
  EXPECT_EQ(seen, (std::map<std::string, std::string>{{"gone", "soon"}, {"k", "v1"}}));

  std::vector<std::optional<std::string>> values;
  ASSERT_TRUE(db->MultiGet({"k", "gone", "new-key"}, &values, snap).ok());
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], "v1");
  EXPECT_EQ(values[1], "soon");
  EXPECT_FALSE(values[2].has_value());

  db->ReleaseSnapshot(snap);
  EXPECT_EQ(db->NumLiveSnapshots(), 0u);
}

TEST_F(DBTest, SnapshotSurvivesFlushAndCompaction) {
  auto db = OpenDB();
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), "old" + std::to_string(i)).ok());
  }
  // Flush so the pinned generation lands in its own table: compaction then
  // has real input overlap to garbage-collect (a single table is a no-op).
  ASSERT_TRUE(db->Flush().ok());
  const DB::Snapshot* snap = db->GetSnapshot();

  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), "new" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 25; i++) {
    ASSERT_TRUE(db->Delete("key" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());
  // Compaction must keep the versions the pinned snapshot can still see.
  EXPECT_GT(db->stats().snapshot_preserved_versions.load(), 0u);

  std::string value;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &value, snap).ok()) << i;
    EXPECT_EQ(value, "old" + std::to_string(i)) << i;
  }
  // Live view: first half deleted, second half overwritten.
  for (int i = 0; i < 25; i++) {
    EXPECT_TRUE(db->Get("key" + std::to_string(i), &value).IsNotFound()) << i;
  }
  for (int i = 25; i < 50; i++) {
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "new" + std::to_string(i)) << i;
  }
  db->ReleaseSnapshot(snap);
}

TEST_F(DBTest, ReleaseSnapshotUnblocksGarbageCollection) {
  auto db = OpenDB();
  ASSERT_TRUE(db->Put("k", "old").ok());
  ASSERT_TRUE(db->Flush().ok());  // two tables so CompactAll does real work
  const DB::Snapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("k", "new").ok());
  ASSERT_TRUE(db->Delete("dead").ok());
  ASSERT_TRUE(db->Flush().ok());

  db->ReleaseSnapshot(snap);
  EXPECT_EQ(db->NumLiveSnapshots(), 0u);
  const uint64_t preserved_before = db->stats().snapshot_preserved_versions.load();
  ASSERT_TRUE(db->CompactAll().ok());
  // No live snapshot: shadowed versions and tombstones are dropped, nothing
  // is preserved on a snapshot's behalf.
  EXPECT_EQ(db->stats().snapshot_preserved_versions.load(), preserved_before);
  std::string value;
  ASSERT_TRUE(db->Get("k", &value).ok());
  EXPECT_EQ(value, "new");
}

TEST_F(DBTest, ConcurrentSnapshotsPinDistinctVersions) {
  auto db = OpenDB();
  std::vector<const DB::Snapshot*> snaps;
  for (int gen = 0; gen < 4; gen++) {
    ASSERT_TRUE(db->Put("k", "gen" + std::to_string(gen)).ok());
    snaps.push_back(db->GetSnapshot());
    ASSERT_TRUE(db->Flush().ok());  // one table per generation
  }
  ASSERT_TRUE(db->CompactAll().ok());
  std::string value;
  for (int gen = 0; gen < 4; gen++) {
    ASSERT_TRUE(db->Get("k", &value, snaps[gen]).ok()) << gen;
    EXPECT_EQ(value, "gen" + std::to_string(gen)) << gen;
  }
  for (auto* s : snaps) db->ReleaseSnapshot(s);
  EXPECT_EQ(db->NumLiveSnapshots(), 0u);
}

class DBValueSizeParam : public ::testing::TestWithParam<size_t> {};

TEST_P(DBValueSizeParam, RoundTripsValuesOfVariousSizes) {
  gt::testing::ScopedTempDir dir;
  auto db = DB::Open(dir.sub("db"), DBOptions{});
  ASSERT_TRUE(db.ok());
  const std::string value(GetParam(), 'x');
  ASSERT_TRUE((*db)->Put("sized", value).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  std::string got;
  ASSERT_TRUE((*db)->Get("sized", &got).ok());
  EXPECT_EQ(got.size(), GetParam());
  EXPECT_EQ(got, value);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DBValueSizeParam,
                         ::testing::Values(0, 1, 100, 4095, 4096, 4097, 65536, 1 << 20));

}  // namespace
}  // namespace gt::kv
