// Tests for the GTravel language: filters, plan building + validation,
// binary plan serialization, and the reference evaluator semantics.
#include <gtest/gtest.h>

#include "src/lang/filter.h"
#include "src/lang/gtravel.h"
#include "src/lang/plan.h"

namespace gt::lang {
namespace {

using graph::Bytes;
using graph::Catalog;
using graph::EdgeRecord;
using graph::PropMap;
using graph::PropValue;
using graph::RefGraph;
using graph::VertexId;
using graph::VertexRecord;

// --- Filters -------------------------------------------------------------------

TEST(FilterTest, EqMatchesExactValue) {
  Filter f{1, FilterOp::kEq, {PropValue("text")}};
  PropMap props;
  props.Set(1, PropValue("text"));
  EXPECT_TRUE(f.Matches(props));
  props.Set(1, PropValue("binary"));
  EXPECT_FALSE(f.Matches(props));
}

TEST(FilterTest, MissingPropertyNeverMatches) {
  Filter f{1, FilterOp::kEq, {PropValue("x")}};
  PropMap empty;
  EXPECT_FALSE(f.Matches(empty));
}

TEST(FilterTest, InMatchesAnyListedValue) {
  Filter f{2, FilterOp::kIn,
           {PropValue(int64_t{1}), PropValue(int64_t{3}), PropValue(int64_t{5})}};
  PropMap props;
  for (int64_t v : {1, 3, 5}) {
    props.Set(2, PropValue(v));
    EXPECT_TRUE(f.Matches(props)) << v;
  }
  props.Set(2, PropValue(int64_t{2}));
  EXPECT_FALSE(f.Matches(props));
}

TEST(FilterTest, RangeIsInclusiveBothEnds) {
  Filter f{3, FilterOp::kRange, {PropValue(int64_t{10}), PropValue(int64_t{20})}};
  PropMap props;
  props.Set(3, PropValue(int64_t{10}));
  EXPECT_TRUE(f.Matches(props));
  props.Set(3, PropValue(int64_t{20}));
  EXPECT_TRUE(f.Matches(props));
  props.Set(3, PropValue(int64_t{15}));
  EXPECT_TRUE(f.Matches(props));
  props.Set(3, PropValue(int64_t{9}));
  EXPECT_FALSE(f.Matches(props));
  props.Set(3, PropValue(int64_t{21}));
  EXPECT_FALSE(f.Matches(props));
}

TEST(FilterTest, RangeWorksOnDoublesAndMixedNumerics) {
  Filter f{3, FilterOp::kRange, {PropValue(1.5), PropValue(2.5)}};
  PropMap props;
  props.Set(3, PropValue(int64_t{2}));
  EXPECT_TRUE(f.Matches(props));
  props.Set(3, PropValue(2.6));
  EXPECT_FALSE(f.Matches(props));
}

TEST(FilterTest, RangeOnStrings) {
  Filter f{1, FilterOp::kRange, {PropValue("b"), PropValue("d")}};
  PropMap props;
  props.Set(1, PropValue("c"));
  EXPECT_TRUE(f.Matches(props));
  props.Set(1, PropValue("a"));
  EXPECT_FALSE(f.Matches(props));
}

TEST(FilterTest, MatchesAllIsConjunction) {
  std::vector<Filter> filters = {
      Filter{1, FilterOp::kEq, {PropValue("x")}},
      Filter{2, FilterOp::kRange, {PropValue(int64_t{0}), PropValue(int64_t{10})}},
  };
  PropMap props;
  props.Set(1, PropValue("x"));
  props.Set(2, PropValue(int64_t{5}));
  EXPECT_TRUE(MatchesAll(filters, props));
  props.Set(2, PropValue(int64_t{11}));
  EXPECT_FALSE(MatchesAll(filters, props));
  EXPECT_TRUE(MatchesAll({}, props));  // empty list matches everything
}

TEST(FilterTest, SerializationRoundTrip) {
  Filter f{42, FilterOp::kIn, {PropValue("a"), PropValue(int64_t{7}), PropValue(1.5)}};
  std::string buf;
  f.EncodeTo(&buf);
  Decoder dec(buf);
  Filter out;
  ASSERT_TRUE(Filter::DecodeFrom(&dec, &out).ok());
  EXPECT_TRUE(out == f);
}

TEST(FilterTest, VertexMatchesAllUsesLabelAsTypePseudoProperty) {
  Catalog cat;
  const auto type_key = cat.Intern("type");
  const auto exec_label = cat.Intern("Execution");
  VertexRecord rec;
  rec.id = 1;
  rec.label = exec_label;
  std::vector<Filter> filters = {Filter{type_key, FilterOp::kEq, {PropValue("Execution")}}};
  EXPECT_TRUE(VertexMatchesAll(filters, rec, cat, type_key));
  filters[0].values[0] = PropValue("File");
  EXPECT_FALSE(VertexMatchesAll(filters, rec, cat, type_key));
}

// --- GTravel builder + validation --------------------------------------------------

class GTravelTest : public ::testing::Test {
 protected:
  Catalog cat_;
};

TEST_F(GTravelTest, BuildsPaperAuditQuery) {
  // GTravel.v(userA).e('run').ea('start_ts',RANGE,[t_s,t_e])
  //        .e('read').va('type',EQ,'text').rtn()
  auto plan = GTravel(&cat_)
                  .v({100})
                  .e("run")
                  .ea("start_ts", FilterOp::kRange,
                      {PropValue(int64_t{10}), PropValue(int64_t{20})})
                  .e("read")
                  .va("type", FilterOp::kEq, {PropValue("text")})
                  .rtn()
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->start_ids, std::vector<VertexId>{100});
  ASSERT_EQ(plan->hops.size(), 2u);
  EXPECT_EQ(plan->hops[0].edge_label, cat_.Lookup("run"));
  EXPECT_EQ(plan->hops[0].edge_filters.size(), 1u);
  EXPECT_EQ(plan->hops[1].vertex_filters.size(), 1u);
  EXPECT_TRUE(plan->hops[1].rtn);
  EXPECT_FALSE(plan->start_rtn);
  EXPECT_EQ(plan->num_steps(), 2u);
}

TEST_F(GTravelTest, BuildsPaperProvenanceQueryWithSourceRtn) {
  // GTravel.v().va('type',EQ,'Execution').rtn().va('model',EQ,'A')
  //        .e('read').va('annotation',EQ,'B')
  auto plan = GTravel(&cat_)
                  .v()
                  .va("type", FilterOp::kEq, {PropValue("Execution")})
                  .rtn()
                  .va("model", FilterOp::kEq, {PropValue("A")})
                  .e("read")
                  .va("annotation", FilterOp::kEq, {PropValue("B")})
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->start_ids.empty());
  EXPECT_TRUE(plan->start_rtn);
  EXPECT_EQ(plan->start_vertex_filters.size(), 2u);
  ASSERT_EQ(plan->hops.size(), 1u);
  EXPECT_EQ(plan->hops[0].vertex_filters.size(), 1u);
  EXPECT_TRUE(plan->has_rtn());
  EXPECT_EQ(plan->last_rtn_step(), 0);
}

TEST_F(GTravelTest, MissingVIsRejected) {
  auto plan = GTravel(&cat_).e("run").Build();
  EXPECT_FALSE(plan.ok());
}

TEST_F(GTravelTest, VMustComeFirst) {
  auto plan = GTravel(&cat_).e("run").v({1}).Build();
  EXPECT_FALSE(plan.ok());
}

TEST_F(GTravelTest, RepeatedVIsRejected) {
  auto plan = GTravel(&cat_).v({1}).v({2}).Build();
  EXPECT_FALSE(plan.ok());
}

TEST_F(GTravelTest, EaBeforeAnyEIsRejected) {
  auto plan = GTravel(&cat_).v({1}).ea("ts", FilterOp::kEq, {PropValue(int64_t{1})}).Build();
  EXPECT_FALSE(plan.ok());
}

TEST_F(GTravelTest, FilterArityIsValidated) {
  EXPECT_FALSE(GTravel(&cat_).v({1}).e("x").va("k", FilterOp::kEq, {}).Build().ok());
  EXPECT_FALSE(GTravel(&cat_)
                   .v({1})
                   .e("x")
                   .va("k", FilterOp::kRange, {PropValue(int64_t{1})})
                   .Build()
                   .ok());
  EXPECT_FALSE(GTravel(&cat_).v({1}).e("x").va("k", FilterOp::kIn, {}).Build().ok());
  EXPECT_TRUE(GTravel(&cat_)
                  .v({1})
                  .e("x")
                  .va("k", FilterOp::kIn, {PropValue(int64_t{1})})
                  .Build()
                  .ok());
}

TEST_F(GTravelTest, UnanchoredScanNeedsTypeFilter) {
  EXPECT_FALSE(GTravel(&cat_).v().e("run").Build().ok());
  EXPECT_TRUE(GTravel(&cat_)
                  .v()
                  .va("type", FilterOp::kEq, {PropValue("User")})
                  .e("run")
                  .Build()
                  .ok());
}

TEST_F(GTravelTest, ZeroHopTraversalWithIdsAllowed) {
  auto plan = GTravel(&cat_).v({1, 2, 3}).Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_steps(), 0u);
}

// --- Plan serialization ---------------------------------------------------------

TEST_F(GTravelTest, PlanSerializationRoundTrip) {
  auto plan = GTravel(&cat_)
                  .v({5, 6})
                  .e("run")
                  .ea("ts", FilterOp::kRange, {PropValue(int64_t{1}), PropValue(int64_t{2})})
                  .rtn()
                  .e("read")
                  .va("name", FilterOp::kIn, {PropValue("a"), PropValue("b")})
                  .e("write")
                  .rtn()
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto decoded = TraversalPlan::Decode(plan->Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == *plan);
}

TEST(PlanTest, DecodeRejectsTruncatedInput) {
  Catalog cat;
  auto plan = GTravel(&cat).v({1}).e("run").Build();
  ASSERT_TRUE(plan.ok());
  const std::string bytes = plan->Encode();
  for (size_t cut = 0; cut < bytes.size(); cut++) {
    EXPECT_FALSE(TraversalPlan::Decode(std::string_view(bytes).substr(0, cut)).ok())
        << "cut=" << cut;
  }
  EXPECT_FALSE(TraversalPlan::Decode(bytes + "trailing").ok());
}

// --- Reference evaluator ----------------------------------------------------------

class EvaluatorTest : public ::testing::Test {
 protected:
  // Builds:  u1 -run-> j1 -spawn-> e1 -read-> f1
  //          u1 -run-> j2 -spawn-> e2 -read-> f2 (f2 fails filter)
  //          e1 also -read-> f2
  void BuildGraph() {
    user_t_ = cat_.Intern("User");
    job_t_ = cat_.Intern("Job");
    exec_t_ = cat_.Intern("Execution");
    file_t_ = cat_.Intern("File");
    run_ = cat_.Intern("run");
    spawn_ = cat_.Intern("spawn");
    read_ = cat_.Intern("read");
    name_ = cat_.Intern("name");

    AddVertex(1, user_t_);
    AddVertex(10, job_t_);
    AddVertex(11, job_t_);
    AddVertex(20, exec_t_);
    AddVertex(21, exec_t_);
    AddVertexWithName(30, file_t_, "keep.txt");
    AddVertexWithName(31, file_t_, "drop.dat");

    AddEdge(1, run_, 10, 100);
    AddEdge(1, run_, 11, 200);
    AddEdge(10, spawn_, 20, 0);
    AddEdge(11, spawn_, 21, 0);
    AddEdge(20, read_, 30, 0);
    AddEdge(20, read_, 31, 0);
    AddEdge(21, read_, 31, 0);
  }

  void AddVertex(VertexId id, graph::LabelId label) {
    VertexRecord v;
    v.id = id;
    v.label = label;
    g_.AddVertex(v);
  }
  void AddVertexWithName(VertexId id, graph::LabelId label, const std::string& name) {
    VertexRecord v;
    v.id = id;
    v.label = label;
    v.props.Set(name_, PropValue(name));
    g_.AddVertex(v);
  }
  void AddEdge(VertexId src, graph::LabelId label, VertexId dst, int64_t ts) {
    EdgeRecord e;
    e.src = src;
    e.label = label;
    e.dst = dst;
    if (ts != 0) e.props.Set(cat_.Intern("ts"), PropValue(ts));
    g_.AddEdge(e);
  }

  Catalog cat_;
  RefGraph g_;
  graph::LabelId user_t_, job_t_, exec_t_, file_t_;
  Catalog::Id run_, spawn_, read_, name_;
};

TEST_F(EvaluatorTest, PlainTraversalReturnsFinalWorkingSet) {
  BuildGraph();
  auto plan = GTravel(&cat_).v({1}).e("run").e("spawn").e("read").Build();
  ASSERT_TRUE(plan.ok());
  auto result = EvaluatePlanOnRefGraph(*plan, g_, cat_);
  EXPECT_EQ(result, (std::vector<VertexId>{30, 31}));
}

TEST_F(EvaluatorTest, EdgeFilterPrunesBranch) {
  BuildGraph();
  auto plan = GTravel(&cat_)
                  .v({1})
                  .e("run")
                  .ea("ts", FilterOp::kRange, {PropValue(int64_t{50}), PropValue(int64_t{150})})
                  .e("spawn")
                  .e("read")
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto result = EvaluatePlanOnRefGraph(*plan, g_, cat_);
  EXPECT_EQ(result, (std::vector<VertexId>{30, 31}));  // only job 10's branch
}

TEST_F(EvaluatorTest, VertexFilterOnFinalStep) {
  BuildGraph();
  auto plan = GTravel(&cat_)
                  .v({1})
                  .e("run")
                  .e("spawn")
                  .e("read")
                  .va("name", FilterOp::kEq, {PropValue("keep.txt")})
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(EvaluatePlanOnRefGraph(*plan, g_, cat_), (std::vector<VertexId>{30}));
}

TEST_F(EvaluatorTest, IntermediateRtnReturnsOnlyVerticesWithFullPaths) {
  BuildGraph();
  // rtn the executions, but require the final files to be keep.txt: only
  // execution 20 reads it.
  auto plan = GTravel(&cat_)
                  .v({1})
                  .e("run")
                  .e("spawn")
                  .rtn()
                  .e("read")
                  .va("name", FilterOp::kEq, {PropValue("keep.txt")})
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(EvaluatePlanOnRefGraph(*plan, g_, cat_), (std::vector<VertexId>{20}));
}

TEST_F(EvaluatorTest, SourceRtnWithTypeScan) {
  BuildGraph();
  auto plan = GTravel(&cat_)
                  .v()
                  .va("type", FilterOp::kEq, {PropValue("Execution")})
                  .rtn()
                  .e("read")
                  .va("name", FilterOp::kEq, {PropValue("drop.dat")})
                  .Build();
  ASSERT_TRUE(plan.ok());
  // Both executions read drop.dat.
  EXPECT_EQ(EvaluatePlanOnRefGraph(*plan, g_, cat_), (std::vector<VertexId>{20, 21}));
}

TEST_F(EvaluatorTest, MultipleRtnStepsUnionResults) {
  BuildGraph();
  auto plan = GTravel(&cat_)
                  .v({1})
                  .e("run")
                  .rtn()
                  .e("spawn")
                  .e("read")
                  .rtn()
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(EvaluatePlanOnRefGraph(*plan, g_, cat_),
            (std::vector<VertexId>{10, 11, 30, 31}));
}

TEST_F(EvaluatorTest, DeadEndYieldsEmptyResult) {
  BuildGraph();
  auto plan = GTravel(&cat_).v({1}).e("read").Build();  // users have no read edges
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(EvaluatePlanOnRefGraph(*plan, g_, cat_).empty());
}

TEST_F(EvaluatorTest, RevisitAcrossStepsIsAllowed) {
  // Cycle: a -next-> b -next-> a -next-> b; the same vertex may be visited
  // at different steps (paper Section II-C pattern 2).
  const auto t = cat_.Intern("Node");
  const auto next = cat_.Intern("next");
  AddVertex(1, t);
  AddVertex(2, t);
  AddEdge(1, next, 2, 0);
  AddEdge(2, next, 1, 0);
  auto plan = GTravel(&cat_).v({1}).e("next").e("next").e("next").Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(EvaluatePlanOnRefGraph(*plan, g_, cat_), (std::vector<VertexId>{2}));
}

TEST_F(EvaluatorTest, ZeroHopPlanReturnsFilteredStartSet) {
  BuildGraph();
  auto plan = GTravel(&cat_).v({1, 10, 999}).Build();
  ASSERT_TRUE(plan.ok());
  // 999 does not exist; 1 and 10 pass (no filters).
  EXPECT_EQ(EvaluatePlanOnRefGraph(*plan, g_, cat_), (std::vector<VertexId>{1, 10}));
}

// --- Language extensions: builder + validation -----------------------------------

TEST_F(GTravelTest, RepeatExpandsIntoHopCopies) {
  auto plan = GTravel(&cat_).v({1}).e("next").repeat(3).Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->hops.size(), 1u);  // compact wire form keeps one hop
  EXPECT_EQ(plan->hops[0].repeat, 3u);
  EXPECT_EQ(plan->num_steps(), 1u);
  EXPECT_EQ(plan->expanded_num_steps(), 3u);

  auto unrolled = plan->Unrolled();
  ASSERT_TRUE(unrolled.ok());
  ASSERT_EQ(unrolled->hops.size(), 3u);
  for (const auto& h : unrolled->hops) {
    EXPECT_EQ(h.edge_label, cat_.Lookup("next"));
    EXPECT_EQ(h.repeat, 1u);
  }
}

TEST_F(GTravelTest, UnrolledPutsRtnOnLastCopyAndUntilOnEveryCopy) {
  auto with_rtn = GTravel(&cat_).v({1}).e("next").repeat(3).rtn().Build();
  ASSERT_TRUE(with_rtn.ok());
  auto u = with_rtn->Unrolled();
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->hops.size(), 3u);
  EXPECT_FALSE(u->hops[0].rtn);
  EXPECT_FALSE(u->hops[1].rtn);
  EXPECT_TRUE(u->hops[2].rtn);

  auto with_until = GTravel(&cat_)
                        .v({1})
                        .e("next")
                        .repeat(3)
                        .until("w", FilterOp::kEq, {PropValue(int64_t{5})})
                        .Build();
  ASSERT_TRUE(with_until.ok());
  u = with_until->Unrolled();
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->hops.size(), 3u);
  // until() checks fire at every iteration boundary of the loop.
  for (const auto& h : u->hops) EXPECT_EQ(h.until_filters.size(), 1u);
  EXPECT_TRUE(u->has_until());
}

TEST_F(GTravelTest, RepeatValidation) {
  EXPECT_FALSE(GTravel(&cat_).v({1}).repeat(2).Build().ok());  // repeat before e()
  EXPECT_FALSE(GTravel(&cat_).v({1}).e("x").repeat(0).Build().ok());
  EXPECT_FALSE(GTravel(&cat_).v({1}).e("x").repeat(65).Build().ok());
  EXPECT_TRUE(GTravel(&cat_).v({1}).e("x").repeat(64).Build().ok());
}

TEST_F(GTravelTest, UntilMustTerminateTheChain) {
  EXPECT_FALSE(GTravel(&cat_)
                   .v({1})
                   .e("x")
                   .until("w", FilterOp::kEq, {PropValue(int64_t{1})})
                   .e("y")
                   .Build()
                   .ok());
  EXPECT_FALSE(GTravel(&cat_)
                   .v({1})
                   .e("x")
                   .rtn()
                   .until("w", FilterOp::kEq, {PropValue(int64_t{1})})
                   .Build()
                   .ok());  // until + rtn
  EXPECT_TRUE(GTravel(&cat_)
                  .v({1})
                  .e("x")
                  .until("w", FilterOp::kEq, {PropValue(int64_t{1})})
                  .Build()
                  .ok());
}

TEST_F(GTravelTest, TerminalsSetResultModeAndEndTheChain) {
  auto counted = GTravel(&cat_).v({1}).e("x").count().Build();
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->result_mode, ResultMode::kCount);

  auto grouped = GTravel(&cat_).v({1}).e("x").group("w").Build();
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->result_mode, ResultMode::kGroup);
  EXPECT_EQ(grouped->group_key, cat_.Lookup("w"));

  auto pathed = GTravel(&cat_).v({1}).e("x").path().Build();
  ASSERT_TRUE(pathed.ok());
  EXPECT_EQ(pathed->result_mode, ResultMode::kPaths);

  // Steps after a terminal are chain errors.
  EXPECT_FALSE(GTravel(&cat_).v({1}).e("x").count().e("y").Build().ok());
  // group()/path() cannot compose with rtn().
  EXPECT_FALSE(GTravel(&cat_).v({1}).e("x").rtn().group("w").Build().ok());
  EXPECT_FALSE(GTravel(&cat_).v({1}).e("x").rtn().path().Build().ok());
}

TEST_F(GTravelTest, PathPlansAreCappedAtEightExpandedSteps) {
  GTravel ok_travel(&cat_);
  ok_travel.v({1});
  for (int h = 0; h < 8; h++) ok_travel.e("x");
  EXPECT_TRUE(ok_travel.path().Build().ok());

  GTravel too_deep(&cat_);
  too_deep.v({1});
  for (int h = 0; h < 9; h++) too_deep.e("x");
  EXPECT_FALSE(too_deep.path().Build().ok());

  // repeat() counts expanded: 3 hops x repeat(3) = 9 > 8.
  EXPECT_FALSE(GTravel(&cat_)
                   .v({1})
                   .e("x")
                   .repeat(3)
                   .e("x")
                   .repeat(3)
                   .e("x")
                   .repeat(3)
                   .path()
                   .Build()
                   .ok());
}

TEST_F(GTravelTest, BranchBuildsAlternativesAndTail) {
  auto plan = GTravel(&cat_)
                  .v({1})
                  .e("run")
                  .branch({GTravel::Alt(&cat_).e("spawn"),
                           GTravel::Alt(&cat_).e("read").repeat(2)})
                  .e("write")
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->has_branch());
  ASSERT_EQ(plan->hops.size(), 1u);
  ASSERT_EQ(plan->branch_alts.size(), 2u);
  EXPECT_EQ(plan->branch_alts[0][0].edge_label, cat_.Lookup("spawn"));
  EXPECT_EQ(plan->branch_alts[1][0].repeat, 2u);
  ASSERT_EQ(plan->branch_tail.size(), 1u);
  EXPECT_EQ(plan->branch_tail[0].edge_label, cat_.Lookup("write"));

  // Unrolled() refuses branches (engines flatten first).
  EXPECT_FALSE(plan->Unrolled().ok());

  auto subs = plan->FlattenBranches();
  ASSERT_EQ(subs.size(), 2u);
  for (const auto& sub : subs) {
    EXPECT_FALSE(sub.has_branch());
    EXPECT_TRUE(sub.Validate().ok());
    EXPECT_EQ(sub.hops.front().edge_label, cat_.Lookup("run"));
    EXPECT_EQ(sub.hops.back().edge_label, cat_.Lookup("write"));
  }
  EXPECT_EQ(subs[0].hops.size(), 3u);  // run + spawn + write
  EXPECT_EQ(subs[1].hops.size(), 3u);  // run + read(repeat 2, compact) + write
  EXPECT_EQ(subs[1].hops[1].repeat, 2u);
}

TEST_F(GTravelTest, BranchValidation) {
  // Fewer than two alternatives defeats the point of a fork.
  EXPECT_FALSE(GTravel(&cat_).v({1}).branch({GTravel::Alt(&cat_).e("x")}).Build().ok());
  // rtn()/until() are not allowed inside an alternative.
  EXPECT_FALSE(GTravel(&cat_)
                   .v({1})
                   .branch({GTravel::Alt(&cat_).e("x").rtn(), GTravel::Alt(&cat_).e("y")})
                   .Build()
                   .ok());
  // At most one branch per traversal.
  EXPECT_FALSE(GTravel(&cat_)
                   .v({1})
                   .branch({GTravel::Alt(&cat_).e("x"), GTravel::Alt(&cat_).e("y")})
                   .branch({GTravel::Alt(&cat_).e("x"), GTravel::Alt(&cat_).e("y")})
                   .Build()
                   .ok());
  // until() may not follow a branch merge.
  EXPECT_FALSE(GTravel(&cat_)
                   .v({1})
                   .branch({GTravel::Alt(&cat_).e("x"), GTravel::Alt(&cat_).e("y")})
                   .e("x")
                   .until("w", FilterOp::kEq, {PropValue(int64_t{1})})
                   .Build()
                   .ok());
  // FlattenBranches of a branch-free plan is the identity.
  auto flat = GTravel(&cat_).v({1}).e("x").Build();
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->FlattenBranches().size(), 1u);
}

TEST_F(GTravelTest, ExtendedPlanSerializationRoundTrip) {
  auto plan = GTravel(&cat_)
                  .v()
                  .va("type", FilterOp::kEq, {PropValue("User")})
                  .va("w", FilterOp::kRange, {PropValue(int64_t{1}), PropValue(int64_t{9})})
                  .e("run")
                  .repeat(4)
                  .branch({GTravel::Alt(&cat_).e("spawn").repeat(2),
                           GTravel::Alt(&cat_).e("read")})
                  .e("write")
                  .group("w")
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Planner outputs ride the same versioned tail.
  TraversalPlan tuned = *plan;
  tuned.push_start_filters = true;
  tuned.fetch_hint = 1;
  ASSERT_TRUE(tuned.Validate().ok());
  EXPECT_TRUE(tuned.has_ext());

  auto decoded = TraversalPlan::Decode(tuned.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == tuned);
  EXPECT_EQ(decoded->Encode(), tuned.Encode());

  auto until_plan = GTravel(&cat_)
                        .v({1})
                        .e("next")
                        .repeat(8)
                        .until("w", FilterOp::kEq, {PropValue(int64_t{5})})
                        .count()
                        .Build();
  ASSERT_TRUE(until_plan.ok());
  decoded = TraversalPlan::Decode(until_plan->Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(*decoded == *until_plan);
}

// --- Language extensions: reference evaluator ------------------------------------

TEST_F(EvaluatorTest, RepeatMatchesManualUnroll) {
  const auto t = cat_.Intern("Node");
  const auto next = cat_.Intern("next");
  AddVertex(1, t);
  AddVertex(2, t);
  AddEdge(1, next, 2, 0);
  AddEdge(2, next, 1, 0);
  auto repeated = GTravel(&cat_).v({1}).e("next").repeat(3).Build();
  auto manual = GTravel(&cat_).v({1}).e("next").e("next").e("next").Build();
  ASSERT_TRUE(repeated.ok());
  ASSERT_TRUE(manual.ok());
  EXPECT_EQ(EvaluatePlanExtOnRefGraph(*repeated, g_, cat_).vids,
            EvaluatePlanOnRefGraph(*manual, g_, cat_));
}

TEST_F(EvaluatorTest, UntilHitsAreTerminalResults) {
  // Chain 1 -> 2 -> 3 -> 4 with w = id; until(w==2) stops the loop at
  // vertex 2 — vertices 3 and 4 are never reached.
  const auto t = cat_.Intern("Node");
  const auto next = cat_.Intern("next");
  const auto w = cat_.Intern("w");
  for (VertexId v = 1; v <= 4; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = t;
    rec.props.Set(w, PropValue(static_cast<int64_t>(v)));
    g_.AddVertex(rec);
    if (v > 1) AddEdge(v - 1, next, v, 0);
  }
  auto plan = GTravel(&cat_)
                  .v({1})
                  .e("next")
                  .repeat(3)
                  .until("w", FilterOp::kEq, {PropValue(int64_t{2})})
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(EvaluatePlanExtOnRefGraph(*plan, g_, cat_).vids, (std::vector<VertexId>{2}));

  // A never-matching until yields nothing (final-step survivors are not
  // results in until plans).
  auto miss = GTravel(&cat_)
                  .v({1})
                  .e("next")
                  .repeat(3)
                  .until("w", FilterOp::kEq, {PropValue(int64_t{99})})
                  .Build();
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(EvaluatePlanExtOnRefGraph(*miss, g_, cat_).vids.empty());
}

TEST_F(EvaluatorTest, CountReturnsCardinality) {
  BuildGraph();
  auto plan = GTravel(&cat_).v({1}).e("run").count().Build();
  ASSERT_TRUE(plan.ok());
  const RefEvalResult r = EvaluatePlanExtOnRefGraph(*plan, g_, cat_);
  EXPECT_EQ(r.count, 2u);
}

TEST_F(EvaluatorTest, GroupBucketsByPropertyAndTypePseudoProperty) {
  BuildGraph();
  auto by_type = GTravel(&cat_).v({1}).e("run").e("spawn").group("type").Build();
  ASSERT_TRUE(by_type.ok());
  const RefEvalResult r = EvaluatePlanExtOnRefGraph(*by_type, g_, cat_);
  // Both executions land in one bucket keyed the way the engines render it.
  VertexRecord probe;
  probe.id = 20;
  probe.label = exec_t_;
  const std::string key =
      GroupValueForVertex(probe, cat_.Lookup("type"), cat_, cat_.Lookup("type"));
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups.at(key), 2u);
}

TEST_F(EvaluatorTest, PathReturnsVisitedChains) {
  BuildGraph();
  auto plan = GTravel(&cat_).v({1}).e("run").e("spawn").path().Build();
  ASSERT_TRUE(plan.ok());
  const RefEvalResult r = EvaluatePlanExtOnRefGraph(*plan, g_, cat_);
  EXPECT_EQ(r.paths, (std::vector<std::vector<VertexId>>{{1, 10, 20}, {1, 11, 21}}));
}

TEST_F(EvaluatorTest, BranchUnionsAlternatives) {
  BuildGraph();
  auto plan = GTravel(&cat_)
                  .v({1})
                  .branch({GTravel::Alt(&cat_).e("run"),
                           GTravel::Alt(&cat_).e("run").e("spawn")})
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(EvaluatePlanExtOnRefGraph(*plan, g_, cat_).vids,
            (std::vector<VertexId>{10, 11, 20, 21}));

  // A tail after the merge runs on the union.
  auto tailed = GTravel(&cat_)
                    .v({1})
                    .branch({GTravel::Alt(&cat_).e("run"),
                             GTravel::Alt(&cat_).e("run")})
                    .e("spawn")
                    .Build();
  ASSERT_TRUE(tailed.ok());
  EXPECT_EQ(EvaluatePlanExtOnRefGraph(*tailed, g_, cat_).vids,
            (std::vector<VertexId>{20, 21}));
}

}  // namespace
}  // namespace gt::lang
