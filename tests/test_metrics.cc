// Unit tests for the metrics registry: counter/gauge/histogram semantics
// (including under concurrent writers), collector lifecycle, Prometheus
// exposition format (golden output), and the reset-for-test fixture.
//
// Tests run against local Registry instances so they never depend on (or
// pollute) the process-wide Registry::Default() other subsystems report to.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/metrics.h"

namespace gt::metrics {
namespace {

TEST(MetricsTest, CounterBasics) {
  Registry reg;
  Counter* c = reg.GetCounter("gt_test_events_total", {{"kind", "a"}});
  EXPECT_EQ(c->Value(), 0u);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->Value(), 42u);

  // Same (name, labels) interns to the same counter; label order is
  // canonicalized so permuted label sets do not fork the series.
  EXPECT_EQ(reg.GetCounter("gt_test_events_total", {{"kind", "a"}}), c);
  Counter* c2 = reg.GetCounter("gt_test_events_total",
                               {{"z", "1"}, {"kind", "a"}});
  EXPECT_NE(c2, c);
  EXPECT_EQ(reg.GetCounter("gt_test_events_total", {{"kind", "a"}, {"z", "1"}}),
            c2);
}

TEST(MetricsTest, GaugeBasics) {
  Registry reg;
  Gauge* g = reg.GetGauge("gt_test_depth");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);
  g->Add(-10);
  EXPECT_EQ(g->Value(), -6);  // gauges may go negative
}

TEST(MetricsTest, HistogramBucketing) {
  Registry reg;
  Histogram* h = reg.GetHistogram("gt_test_latency_ms", {}, {1.0, 10.0, 100.0});
  h->Observe(0.5);    // <= 1
  h->Observe(1.0);    // <= 1 (bounds are inclusive upper edges)
  h->Observe(5.0);    // <= 10
  h->Observe(1000.0); // +Inf
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_DOUBLE_EQ(h->Sum(), 1006.5);
  const std::vector<uint64_t> buckets = h->BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // three bounds + Inf
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(MetricsTest, ConcurrentWritersLoseNothing) {
  Registry reg;
  Counter* c = reg.GetCounter("gt_test_concurrent_total");
  Gauge* g = reg.GetGauge("gt_test_concurrent_gauge");
  Histogram* h = reg.GetHistogram("gt_test_concurrent_ms", {}, {1.0, 2.0, 4.0});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        c->Inc();
        g->Add(1);
        h->Observe(static_cast<double>(t % 4) + 0.5);
      }
    });
  }
  for (auto& th : threads) th.join();

  const uint64_t expected = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(c->Value(), expected);
  EXPECT_EQ(g->Value(), static_cast<int64_t>(expected));
  EXPECT_EQ(h->Count(), expected);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, expected);
  // Sum is CAS-accumulated: every observation lands exactly once.
  double expected_sum = 0;
  for (int t = 0; t < kThreads; t++) {
    expected_sum += (static_cast<double>(t % 4) + 0.5) * kPerThread;
  }
  EXPECT_DOUBLE_EQ(h->Sum(), expected_sum);
}

TEST(MetricsTest, ExpositionGolden) {
  Registry reg;
  reg.GetCounter("gt_test_requests_total", {{"server", "s0"}},
                 "Requests handled")->Inc(3);
  reg.GetCounter("gt_test_requests_total", {{"server", "s1"}})->Inc(4);
  reg.GetGauge("gt_test_queue_depth", {}, "Queue depth")->Set(2);
  Histogram* h =
      reg.GetHistogram("gt_test_ms", {{"server", "s0"}}, {1.0, 10.0}, "Latency");
  h->Observe(0.5);
  h->Observe(3.0);
  h->Observe(30.0);

  const std::string expected =
      "# HELP gt_test_ms Latency\n"
      "# TYPE gt_test_ms histogram\n"
      "gt_test_ms_bucket{server=\"s0\",le=\"1\"} 1\n"
      "gt_test_ms_bucket{server=\"s0\",le=\"10\"} 2\n"
      "gt_test_ms_bucket{server=\"s0\",le=\"+Inf\"} 3\n"
      "gt_test_ms_sum{server=\"s0\"} 33.5\n"
      "gt_test_ms_count{server=\"s0\"} 3\n"
      "# HELP gt_test_queue_depth Queue depth\n"
      "# TYPE gt_test_queue_depth gauge\n"
      "gt_test_queue_depth 2\n"
      "# HELP gt_test_requests_total Requests handled\n"
      "# TYPE gt_test_requests_total counter\n"
      "gt_test_requests_total{server=\"s0\"} 3\n"
      "gt_test_requests_total{server=\"s1\"} 4\n";
  EXPECT_EQ(reg.Expose(), expected);
}

TEST(MetricsTest, ExpositionEscapesLabelValues) {
  Registry reg;
  reg.GetCounter("gt_test_esc_total", {{"path", "a\\b\"c\nd"}})->Inc();
  const std::string out = reg.Expose();
  EXPECT_NE(out.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos) << out;
}

TEST(MetricsTest, PrefixFilterAndSum) {
  Registry reg;
  reg.GetCounter("gt_kv_ops_total", {{"db", "a"}})->Inc(5);
  reg.GetCounter("gt_kv_ops_total", {{"db", "b"}})->Inc(7);
  reg.GetCounter("gt_rpc_ops_total")->Inc(100);
  EXPECT_DOUBLE_EQ(reg.Sum("gt_kv_ops_total"), 12.0);
  const auto kv_only = reg.Collect("gt_kv_");
  ASSERT_EQ(kv_only.size(), 2u);
  for (const auto& s : kv_only) EXPECT_EQ(s.name, "gt_kv_ops_total");
  EXPECT_EQ(reg.Expose("gt_rpc_").find("gt_kv_"), std::string::npos);
}

TEST(MetricsTest, CollectorLifecycle) {
  Registry reg;
  reg.DescribeFamily("gt_test_collected_total", MetricType::kCounter,
                     "From a collector");
  const CollectorId id = reg.AddCollector([](std::vector<Sample>* out) {
    out->push_back({"gt_test_collected_total",
                    {{"instance", "i0"}},
                    9,
                    MetricType::kCounter});
  });
  std::string out = reg.Expose();
  EXPECT_NE(out.find("# TYPE gt_test_collected_total counter"), std::string::npos)
      << out;
  EXPECT_NE(out.find("gt_test_collected_total{instance=\"i0\"} 9"),
            std::string::npos)
      << out;
  EXPECT_DOUBLE_EQ(reg.Sum("gt_test_collected_total"), 9.0);

  reg.RemoveCollector(id);
  out = reg.Expose();
  EXPECT_EQ(out.find("gt_test_collected_total{"), std::string::npos) << out;
}

// Fixture pattern for tests that share a registry: reset between tests so
// no state bleeds across test boundaries.
class MetricsFixtureTest : public ::testing::Test {
 protected:
  void TearDown() override { registry_.ResetForTest(); }
  Registry registry_;
};

TEST_F(MetricsFixtureTest, ResetZeroesOwnedMetrics) {
  Counter* c = registry_.GetCounter("gt_test_fixture_total");
  Gauge* g = registry_.GetGauge("gt_test_fixture_gauge");
  Histogram* h = registry_.GetHistogram("gt_test_fixture_ms", {}, {1.0});
  c->Inc(10);
  g->Set(5);
  h->Observe(0.5);
  registry_.ResetForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.0);
  for (uint64_t b : h->BucketCounts()) EXPECT_EQ(b, 0u);
  // Handles stay valid after reset (pointers are stable for registry life).
  c->Inc();
  EXPECT_EQ(c->Value(), 1u);
}

TEST_F(MetricsFixtureTest, ResetLeavesCollectorsRegistered) {
  int calls = 0;
  registry_.AddCollector([&calls](std::vector<Sample>* out) {
    calls++;
    out->push_back({"gt_test_live_total", {}, 1, MetricType::kCounter});
  });
  registry_.ResetForTest();
  EXPECT_DOUBLE_EQ(registry_.Sum("gt_test_live_total"), 1.0);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gt::metrics
