// Planner tests: golden plan-rewrite expectations (filter reordering,
// predicate pushdown, fetch-strategy selection) plus a property test that
// every rewrite is result-identical under the extended reference evaluator
// on seeded random graphs. The cross-engine planner-on/planner-off leg
// lives in test_engine_differential.cc; this file pins the rewrite logic
// itself, with no cluster in the loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/lang/gtravel.h"
#include "src/lang/planner.h"

namespace gt::lang {
namespace {

using graph::Catalog;
using graph::EdgeRecord;
using graph::PropValue;
using graph::RefGraph;
using graph::VertexId;
using graph::VertexRecord;

// Fixed-composition graph for the goldens: 10 vertices, 2 of type A and
// 8 of type B (so the type-EQ("A") selectivity is exactly 0.2, below the
// 0.35 RANGE prior), 30 x-edges (avg out-degree 3.0).
RefGraph BuildGoldenGraph(Catalog* catalog) {
  RefGraph g;
  const auto type_a = catalog->Intern("A");
  const auto type_b = catalog->Intern("B");
  const auto w_key = catalog->Intern("w");
  const auto label_x = catalog->Intern("x");
  for (VertexId v = 0; v < 10; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = v < 2 ? type_a : type_b;
    rec.props.Set(w_key, PropValue(static_cast<int64_t>(v * 10)));
    g.AddVertex(rec);
  }
  // Each vertex points at its next three neighbours: 30 distinct edges
  // (RefGraph upserts on (src, label, dst), so the dsts must differ).
  for (uint32_t i = 0; i < 30; i++) {
    EdgeRecord e;
    e.src = i % 10;
    e.dst = (e.src + 1 + i / 10) % 10;
    e.label = label_x;
    g.AddEdge(e);
  }
  return g;
}

TEST(PlannerTest, CollectPlanStatsCountsTypesAndLabels) {
  Catalog catalog;
  RefGraph g = BuildGoldenGraph(&catalog);
  const PlanStats stats = CollectPlanStats(g, catalog);
  EXPECT_EQ(stats.total_vertices, 10u);
  EXPECT_EQ(stats.total_edges, 30u);
  EXPECT_EQ(stats.vertices_per_type.at(catalog.Lookup("A")), 2u);
  EXPECT_EQ(stats.vertices_per_type.at(catalog.Lookup("B")), 8u);
  EXPECT_EQ(stats.edges_per_label.at(catalog.Lookup("x")), 30u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree(catalog.Lookup("x")), 3.0);
}

TEST(PlannerTest, TypeEqSelectivityUsesTrueFraction) {
  Catalog catalog;
  RefGraph g = BuildGoldenGraph(&catalog);
  const PlanStats stats = CollectPlanStats(g, catalog);
  const auto type_key = catalog.Intern("type");
  const Filter type_a{type_key, FilterOp::kEq, {PropValue("A")}};
  const Filter type_b{type_key, FilterOp::kEq, {PropValue("B")}};
  const Filter type_unknown{type_key, FilterOp::kEq, {PropValue("Nobody")}};
  EXPECT_DOUBLE_EQ(EstimateSelectivity(type_a, stats, catalog, type_key), 0.2);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(type_b, stats, catalog, type_key), 0.8);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(type_unknown, stats, catalog, type_key), 0.0);
  // Non-type filters fall back to the per-op priors, ordered EQ < IN < RANGE.
  const Filter eq{catalog.Intern("w"), FilterOp::kEq, {PropValue(int64_t{1})}};
  const Filter in{catalog.Intern("w"),
                  FilterOp::kIn,
                  {PropValue(int64_t{1}), PropValue(int64_t{2}), PropValue(int64_t{3})}};
  const Filter range{catalog.Intern("w"),
                     FilterOp::kRange,
                     {PropValue(int64_t{0}), PropValue(int64_t{9})}};
  const double s_eq = EstimateSelectivity(eq, stats, catalog, type_key);
  const double s_in = EstimateSelectivity(in, stats, catalog, type_key);
  const double s_range = EstimateSelectivity(range, stats, catalog, type_key);
  EXPECT_LT(s_eq, s_in);
  EXPECT_LT(s_in, s_range);
}

TEST(PlannerTest, GoldenReorderPutsSelectiveTypeFilterFirst) {
  Catalog catalog;
  RefGraph g = BuildGoldenGraph(&catalog);
  const PlanStats stats = CollectPlanStats(g, catalog);
  const auto type_key = catalog.Intern("type");

  // Chained order: the RANGE (0.35) before the type-EQ "A" (0.2). The
  // rewrite must stable-sort the AND list so the cheaper eliminator runs
  // first — and change nothing else.
  GTravel travel(&catalog);
  travel.v()
      .va("w", FilterOp::kRange, {PropValue(int64_t{0}), PropValue(int64_t{50})})
      .va("type", FilterOp::kEq, {PropValue("A")})
      .e("x");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->start_vertex_filters.size(), 2u);
  EXPECT_EQ(plan->start_vertex_filters[0].op, FilterOp::kRange);

  PlannerReport report;
  const TraversalPlan rewritten = RewritePlan(*plan, stats, catalog, type_key, &report);
  ASSERT_EQ(rewritten.start_vertex_filters.size(), 2u);
  EXPECT_EQ(rewritten.start_vertex_filters[0].key, type_key);
  EXPECT_EQ(rewritten.start_vertex_filters[1].op, FilterOp::kRange);
  EXPECT_EQ(report.filter_lists_reordered, 1u);
  EXPECT_TRUE(rewritten.Validate().ok());
  // Hops, result mode and start ids are untouched.
  EXPECT_EQ(rewritten.hops.size(), plan->hops.size());
  EXPECT_EQ(rewritten.result_mode, plan->result_mode);
  EXPECT_EQ(rewritten.start_ids, plan->start_ids);
}

TEST(PlannerTest, GoldenReorderSortsHopFilterListsByOpPrior) {
  Catalog catalog;
  RefGraph g = BuildGoldenGraph(&catalog);
  const PlanStats stats = CollectPlanStats(g, catalog);
  const auto type_key = catalog.Intern("type");

  GTravel travel(&catalog);
  travel.v({0})
      .e("x")
      .ea("p", FilterOp::kRange, {PropValue(int64_t{0}), PropValue(int64_t{9})})
      .ea("p", FilterOp::kEq, {PropValue(int64_t{5})});
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->hops[0].edge_filters.size(), 2u);
  EXPECT_EQ(plan->hops[0].edge_filters[0].op, FilterOp::kRange);

  const TraversalPlan rewritten = RewritePlan(*plan, stats, catalog, type_key);
  EXPECT_EQ(rewritten.hops[0].edge_filters[0].op, FilterOp::kEq);
  EXPECT_EQ(rewritten.hops[0].edge_filters[1].op, FilterOp::kRange);
}

TEST(PlannerTest, GoldenPushdownOnlyWhenScanStartCarriesExtraFilters) {
  Catalog catalog;
  RefGraph g = BuildGoldenGraph(&catalog);
  const PlanStats stats = CollectPlanStats(g, catalog);
  const auto type_key = catalog.Intern("type");

  // Type anchor only: the index scan already yields exactly the start set.
  GTravel bare(&catalog);
  bare.v().va("type", FilterOp::kEq, {PropValue("B")}).e("x");
  auto bare_plan = bare.Build();
  ASSERT_TRUE(bare_plan.ok());
  PlannerReport report;
  TraversalPlan rewritten = RewritePlan(*bare_plan, stats, catalog, type_key, &report);
  EXPECT_FALSE(rewritten.push_start_filters);
  EXPECT_FALSE(report.pushed_down);

  // Extra start filter: pushed into the scan.
  GTravel filtered(&catalog);
  filtered.v()
      .va("type", FilterOp::kEq, {PropValue("B")})
      .va("w", FilterOp::kRange, {PropValue(int64_t{0}), PropValue(int64_t{50})})
      .e("x");
  auto filtered_plan = filtered.Build();
  ASSERT_TRUE(filtered_plan.ok());
  rewritten = RewritePlan(*filtered_plan, stats, catalog, type_key, &report);
  EXPECT_TRUE(rewritten.push_start_filters);
  EXPECT_TRUE(report.pushed_down);

  // Anchored starts never push down (there is no index scan to push into).
  GTravel anchored(&catalog);
  anchored.v({1, 2}).va("w", FilterOp::kRange,
                        {PropValue(int64_t{0}), PropValue(int64_t{50})});
  anchored.e("x");
  auto anchored_plan = anchored.Build();
  ASSERT_TRUE(anchored_plan.ok());
  rewritten = RewritePlan(*anchored_plan, stats, catalog, type_key, &report);
  EXPECT_FALSE(rewritten.push_start_filters);
}

TEST(PlannerTest, GoldenFetchHintFollowsExpectedFrontierWidth) {
  Catalog catalog;
  RefGraph g = BuildGoldenGraph(&catalog);
  const PlanStats stats = CollectPlanStats(g, catalog);
  const auto type_key = catalog.Intern("type");

  // One anchored start * degree 3.0 = width 3 < 4: single-vertex fetch.
  GTravel narrow(&catalog);
  narrow.v({0}).e("x");
  auto narrow_plan = narrow.Build();
  ASSERT_TRUE(narrow_plan.ok());
  PlannerReport report;
  TraversalPlan rewritten = RewritePlan(*narrow_plan, stats, catalog, type_key, &report);
  EXPECT_EQ(rewritten.fetch_hint, 2);
  EXPECT_DOUBLE_EQ(report.est_first_hop_width, 3.0);

  // Type-B scan (8 vertices) * degree 3.0 = width 24 >= 4: batched fetch.
  GTravel wide(&catalog);
  wide.v().va("type", FilterOp::kEq, {PropValue("B")}).e("x");
  auto wide_plan = wide.Build();
  ASSERT_TRUE(wide_plan.ok());
  rewritten = RewritePlan(*wide_plan, stats, catalog, type_key, &report);
  EXPECT_EQ(rewritten.fetch_hint, 1);
  EXPECT_DOUBLE_EQ(report.est_start_width, 8.0);
  EXPECT_DOUBLE_EQ(report.est_first_hop_width, 24.0);
}

// --- Property test: rewrites preserve reference-evaluator results ----------

RefGraph BuildRandomGraph(Catalog* catalog, Rng* rng, uint32_t n) {
  RefGraph g;
  const auto type_a = catalog->Intern("A");
  const auto type_b = catalog->Intern("B");
  const auto w_key = catalog->Intern("w");
  const auto p_key = catalog->Intern("p");
  const auto label_x = catalog->Intern("x");
  const auto label_y = catalog->Intern("y");
  for (VertexId v = 0; v < n; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = rng->Bernoulli(0.6) ? type_a : type_b;
    rec.props.Set(w_key, PropValue(static_cast<int64_t>(rng->Uniform(100))));
    g.AddVertex(rec);
  }
  for (uint32_t i = 0; i < n * 3; i++) {
    EdgeRecord e;
    e.src = rng->Uniform(n);
    e.dst = rng->Uniform(n);
    e.label = rng->Bernoulli(0.5) ? label_x : label_y;
    e.props.Set(p_key, PropValue(static_cast<int64_t>(rng->Uniform(100))));
    g.AddEdge(e);
  }
  return g;
}

// Random plan spanning every language flavor (mirrors the differential
// harness's generator, but pure lang-level — no cluster).
TraversalPlan BuildRandomExtPlan(Catalog* catalog, Rng* rng, uint32_t n) {
  GTravel travel(catalog);
  if (rng->Bernoulli(0.7)) {
    std::vector<VertexId> ids;
    const uint32_t k = 1 + static_cast<uint32_t>(rng->Uniform(3));
    for (uint32_t i = 0; i < k; i++) ids.push_back(rng->Uniform(n));
    travel.v(ids);
  } else {
    travel.v().va("type", FilterOp::kEq, {PropValue(rng->Bernoulli(0.5) ? "A" : "B")});
    if (rng->Bernoulli(0.5)) {
      travel.va("w", FilterOp::kRange, {PropValue(int64_t{0}), PropValue(int64_t{80})});
    }
  }
  auto random_hop = [&](GTravel& t, bool allow_repeat) {
    t.e(rng->Bernoulli(0.5) ? "x" : "y");
    if (allow_repeat && rng->Bernoulli(0.3)) {
      t.repeat(2 + static_cast<uint32_t>(rng->Uniform(2)));
    }
    if (rng->Bernoulli(0.3)) {
      const int64_t lo = static_cast<int64_t>(rng->Uniform(40));
      t.ea("p", FilterOp::kRange, {PropValue(lo), PropValue(lo + 55)});
    }
    if (rng->Bernoulli(0.3)) {
      t.va("w", FilterOp::kRange, {PropValue(int64_t{0}), PropValue(int64_t{85})});
    }
  };
  const uint32_t flavor = rng->Uniform(5);
  switch (flavor) {
    case 0: {  // legacy rtn
      const uint32_t hops = 2 + static_cast<uint32_t>(rng->Uniform(3));
      for (uint32_t h = 0; h < hops; h++) {
        random_hop(travel, false);
        if (rng->Bernoulli(0.3)) travel.rtn();
      }
      break;
    }
    case 1: {  // repeat/until
      const uint32_t hops = 1 + static_cast<uint32_t>(rng->Uniform(3));
      for (uint32_t h = 0; h < hops; h++) random_hop(travel, true);
      if (rng->Bernoulli(0.6)) {
        const int64_t lo = static_cast<int64_t>(rng->Uniform(60));
        travel.until("w", FilterOp::kRange, {PropValue(lo), PropValue(lo + 30)});
      }
      break;
    }
    case 2: {  // aggregate
      const uint32_t hops = 2 + static_cast<uint32_t>(rng->Uniform(3));
      for (uint32_t h = 0; h < hops; h++) random_hop(travel, false);
      rng->Bernoulli(0.5) ? travel.count()
                          : travel.group(rng->Bernoulli(0.5) ? "w" : "type");
      break;
    }
    case 3: {  // branch
      if (rng->Bernoulli(0.5)) random_hop(travel, false);
      std::vector<GTravel> alts;
      const uint32_t num_alts = 2 + static_cast<uint32_t>(rng->Uniform(2));
      for (uint32_t a = 0; a < num_alts; a++) {
        GTravel alt = GTravel::Alt(catalog);
        const uint32_t alt_hops = 1 + static_cast<uint32_t>(rng->Uniform(2));
        for (uint32_t h = 0; h < alt_hops; h++) random_hop(alt, true);
        alts.push_back(std::move(alt));
      }
      travel.branch(std::move(alts));
      if (rng->Bernoulli(0.4)) random_hop(travel, false);
      break;
    }
    default: {  // path
      const uint32_t hops = 2 + static_cast<uint32_t>(rng->Uniform(2));
      for (uint32_t h = 0; h < hops; h++) random_hop(travel, false);
      travel.path();
      break;
    }
  }
  auto plan = travel.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

TEST(PlannerTest, RewritesPreserveReferenceResultsOnSeededGraphs) {
  for (uint64_t seed = 1; seed <= 20; seed++) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 6700417);
    Catalog catalog;
    const auto type_key = catalog.Intern("type");
    const uint32_t n = 30 + static_cast<uint32_t>(rng.Uniform(50));
    RefGraph g = BuildRandomGraph(&catalog, &rng, n);
    const PlanStats stats = CollectPlanStats(g, catalog);

    for (int q = 0; q < 5; q++) {
      SCOPED_TRACE("query=" + std::to_string(q));
      const TraversalPlan plan = BuildRandomExtPlan(&catalog, &rng, n);
      const TraversalPlan rewritten = RewritePlan(plan, stats, catalog, type_key);
      ASSERT_TRUE(rewritten.Validate().ok()) << rewritten.Validate().ToString();

      const RefEvalResult before = EvaluatePlanExtOnRefGraph(plan, g, catalog);
      const RefEvalResult after = EvaluatePlanExtOnRefGraph(rewritten, g, catalog);
      EXPECT_EQ(before.vids, after.vids);
      EXPECT_EQ(before.count, after.count);
      EXPECT_EQ(before.groups, after.groups);
      EXPECT_EQ(before.paths, after.paths);

      // The rewrite is a fixpoint: re-planning an already-planned plan
      // changes nothing (the bench replans per submission, so this matters).
      const TraversalPlan again = RewritePlan(rewritten, stats, catalog, type_key);
      EXPECT_EQ(again.Encode(), rewritten.Encode());
    }
  }
}

}  // namespace
}  // namespace gt::lang
