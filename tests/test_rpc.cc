// Tests for the RPC layer: message wire format, in-process transport
// (delivery, ordering, latency, fault injection), mailbox request/response
// correlation, and the TCP transport over localhost sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/sync.h"
#include "src/rpc/inproc_transport.h"
#include "src/rpc/mailbox.h"
#include "src/rpc/message.h"
#include "src/rpc/tcp_transport.h"

namespace gt::rpc {
namespace {

// --- wire format -------------------------------------------------------------

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message m;
  m.type = MsgType::kTraverse;
  m.src = 3;
  m.dst = 7;
  m.rpc_id = 0xabcdef;
  m.payload = "frontier-bytes\0with-nul";

  std::string frame;
  m.EncodeTo(&frame);
  // Strip the frame_len prefix like a transport reader would.
  ASSERT_GE(frame.size(), 4u);
  const uint32_t frame_len = DecodeFixed32(frame.data());
  ASSERT_EQ(frame_len, frame.size() - 4);

  auto decoded = Message::DecodeBody(std::string_view(frame).substr(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MsgType::kTraverse);
  EXPECT_EQ(decoded->src, 3u);
  EXPECT_EQ(decoded->dst, 7u);
  EXPECT_EQ(decoded->rpc_id, 0xabcdefu);
  EXPECT_EQ(decoded->payload, m.payload);
}

TEST(MessageTest, DecodeRejectsShortBody) {
  EXPECT_FALSE(Message::DecodeBody(std::string_view("tiny")).ok());
  EXPECT_FALSE(Message::DecodeBody(std::string("tiny")).ok());
}

TEST(MessageTest, EmptyPayloadAllowed) {
  Message m;
  m.type = MsgType::kPing;
  std::string frame;
  m.EncodeTo(&frame);
  auto decoded = Message::DecodeBody(std::string_view(frame).substr(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
}

// --- InProcTransport -----------------------------------------------------------

TEST(InProcTransportTest, DeliversToRegisteredEndpoint) {
  InProcTransport transport;
  Notification got;
  std::string payload;
  ASSERT_TRUE(transport
                  .RegisterEndpoint(1,
                                    [&](Message&& m) {
                                      payload = m.payload;
                                      got.Notify();
                                    })
                  .ok());
  Message m;
  m.type = MsgType::kPing;
  m.dst = 1;
  m.payload = "hello";
  ASSERT_TRUE(transport.Send(std::move(m)).ok());
  ASSERT_TRUE(got.WaitFor(std::chrono::seconds(5)));
  EXPECT_EQ(payload, "hello");
}

TEST(InProcTransportTest, UnknownDestinationFails) {
  InProcTransport transport;
  Message m;
  m.dst = 99;
  EXPECT_TRUE(transport.Send(std::move(m)).IsNotFound());
}

TEST(InProcTransportTest, DuplicateRegistrationRejected) {
  InProcTransport transport;
  ASSERT_TRUE(transport.RegisterEndpoint(5, [](Message&&) {}).ok());
  EXPECT_EQ(transport.RegisterEndpoint(5, [](Message&&) {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(InProcTransportTest, PerDestinationOrderingPreserved) {
  InProcTransport transport;
  std::vector<int> order;
  std::mutex mu;
  CountDownLatch latch(100);
  ASSERT_TRUE(transport
                  .RegisterEndpoint(1,
                                    [&](Message&& m) {
                                      std::lock_guard<std::mutex> lk(mu);
                                      order.push_back(static_cast<int>(m.rpc_id));
                                      latch.CountDown();
                                    })
                  .ok());
  for (int i = 0; i < 100; i++) {
    Message m;
    m.type = MsgType::kPing;
    m.dst = 1;
    m.rpc_id = static_cast<uint64_t>(i);
    ASSERT_TRUE(transport.Send(std::move(m)).ok());
  }
  ASSERT_TRUE(latch.WaitFor(std::chrono::seconds(10)));
  std::lock_guard<std::mutex> lk(mu);
  for (int i = 0; i < 100; i++) EXPECT_EQ(order[i], i);
}

TEST(InProcTransportTest, ConfiguredLatencyDelaysDelivery) {
  InProcConfig cfg;
  cfg.latency_us = 20000;  // 20 ms
  InProcTransport transport(cfg);
  Notification got;
  ASSERT_TRUE(transport.RegisterEndpoint(1, [&](Message&&) { got.Notify(); }).ok());
  Stopwatch watch;
  Message m;
  m.dst = 1;
  ASSERT_TRUE(transport.Send(std::move(m)).ok());
  ASSERT_TRUE(got.WaitFor(std::chrono::seconds(5)));
  EXPECT_GE(watch.ElapsedMicros(), 15000u);
}

TEST(InProcTransportTest, FaultHookDropsMatchingMessages) {
  InProcTransport transport;
  std::atomic<int> delivered{0};
  ASSERT_TRUE(transport.RegisterEndpoint(1, [&](Message&&) { delivered++; }).ok());
  transport.SetFaultHook(
      [](const Message& m) { return m.type == MsgType::kTraverse; });

  Message drop;
  drop.type = MsgType::kTraverse;
  drop.dst = 1;
  ASSERT_TRUE(transport.Send(std::move(drop)).ok());

  Notification got;
  ASSERT_TRUE(transport.RegisterEndpoint(2, [&](Message&&) { got.Notify(); }).ok());
  Message keep;
  keep.type = MsgType::kPing;
  keep.dst = 2;
  ASSERT_TRUE(transport.Send(std::move(keep)).ok());
  ASSERT_TRUE(got.WaitFor(std::chrono::seconds(5)));

  EXPECT_EQ(delivered.load(), 0);
  EXPECT_EQ(transport.stats().messages_dropped.load(), 1u);
}

TEST(InProcTransportTest, StatsCountTraffic) {
  InProcTransport transport;
  CountDownLatch latch(3);
  ASSERT_TRUE(transport.RegisterEndpoint(1, [&](Message&&) { latch.CountDown(); }).ok());
  for (int i = 0; i < 3; i++) {
    Message m;
    m.dst = 1;
    m.payload = "xx";
    ASSERT_TRUE(transport.Send(std::move(m)).ok());
  }
  ASSERT_TRUE(latch.WaitFor(std::chrono::seconds(5)));
  EXPECT_EQ(transport.stats().messages_sent.load(), 3u);
  EXPECT_GT(transport.stats().bytes_sent.load(), 6u);
}

TEST(InProcTransportTest, UnregisterStopsDelivery) {
  InProcTransport transport;
  std::atomic<int> count{0};
  ASSERT_TRUE(transport.RegisterEndpoint(1, [&](Message&&) { count++; }).ok());
  transport.UnregisterEndpoint(1);
  Message m;
  m.dst = 1;
  EXPECT_TRUE(transport.Send(std::move(m)).IsNotFound());
  // Re-registration after unregister works.
  EXPECT_TRUE(transport.RegisterEndpoint(1, [](Message&&) {}).ok());
}

TEST(InProcTransportTest, ShutdownIsIdempotentAndStopsSends) {
  InProcTransport transport;
  ASSERT_TRUE(transport.RegisterEndpoint(1, [](Message&&) {}).ok());
  transport.Shutdown();
  transport.Shutdown();
  Message m;
  m.dst = 1;
  EXPECT_FALSE(transport.Send(std::move(m)).ok());
}

TEST(InProcTransportTest, ProbabilisticDropLosesRoughlyConfiguredShare) {
  InProcConfig cfg;
  cfg.drop_probability = 0.5;
  cfg.seed = 7;
  InProcTransport transport(cfg);
  std::atomic<int> delivered{0};
  ASSERT_TRUE(transport.RegisterEndpoint(1, [&](Message&&) { delivered++; }).ok());
  const int sends = 400;
  for (int i = 0; i < sends; i++) {
    Message m;
    m.dst = 1;
    ASSERT_TRUE(transport.Send(std::move(m)).ok());
  }
  // Wait until every non-dropped message has been delivered.
  const auto dropped = transport.stats().messages_dropped.load();
  while (delivered.load() + static_cast<int>(dropped) < sends) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(dropped, sends / 4u);
  EXPECT_LT(dropped, 3u * sends / 4u);
  EXPECT_EQ(delivered.load() + static_cast<int>(dropped), sends);
}

TEST(InProcTransportTest, JitterStaysWithinConfiguredBound) {
  InProcConfig cfg;
  cfg.latency_us = 1000;
  cfg.jitter_us = 2000;
  InProcTransport transport(cfg);
  CountDownLatch latch(20);
  ASSERT_TRUE(transport.RegisterEndpoint(1, [&](Message&&) { latch.CountDown(); }).ok());
  Stopwatch watch;
  for (int i = 0; i < 20; i++) {
    Message m;
    m.dst = 1;
    ASSERT_TRUE(transport.Send(std::move(m)).ok());
  }
  ASSERT_TRUE(latch.WaitFor(std::chrono::seconds(5)));
  // All 20 messages pipeline: the last delivery is bounded by max one-way
  // latency (1ms + 2ms jitter) plus scheduling slack, not 20x that.
  EXPECT_LT(watch.ElapsedMicros(), 1000000u);
}

// --- Mailbox ----------------------------------------------------------------------

TEST(MailboxTest, CallMatchesResponseByRpcId) {
  InProcTransport transport;
  // Echo server: replies with the same rpc_id, transformed payload.
  ASSERT_TRUE(transport
                  .RegisterEndpoint(1,
                                    [&](Message&& m) {
                                      Message reply;
                                      reply.type = MsgType::kPong;
                                      reply.src = 1;
                                      reply.dst = m.src;
                                      reply.rpc_id = m.rpc_id;
                                      reply.payload = "re:" + m.payload;
                                      transport.Send(std::move(reply)).ok();
                                    })
                  .ok());
  Mailbox mailbox(&transport, kClientIdBase);
  auto reply = mailbox.Call(1, MsgType::kPing, "ping-1");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->payload, "re:ping-1");
}

TEST(MailboxTest, CallTimesOutWithoutResponder) {
  InProcTransport transport;
  ASSERT_TRUE(transport.RegisterEndpoint(1, [](Message&&) { /* never reply */ }).ok());
  Mailbox mailbox(&transport, kClientIdBase);
  auto reply = mailbox.Call(1, MsgType::kPing, "", /*timeout_ms=*/50);
  EXPECT_TRUE(reply.status().IsTimeout());
}

TEST(MailboxTest, ReceiveGetsUnsolicitedMessages) {
  InProcTransport transport;
  Mailbox mailbox(&transport, kClientIdBase);
  Message m;
  m.type = MsgType::kResultChunk;
  m.dst = kClientIdBase;
  m.payload = "chunk";
  ASSERT_TRUE(transport.Send(std::move(m)).ok());
  auto got = mailbox.Receive(5000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "chunk");
}

TEST(MailboxTest, TryReceiveNonBlocking) {
  InProcTransport transport;
  Mailbox mailbox(&transport, kClientIdBase);
  EXPECT_TRUE(mailbox.TryReceive().status().IsTimeout());
}

TEST(MailboxTest, ConcurrentCallsFromMultipleThreads) {
  InProcTransport transport;
  ASSERT_TRUE(transport
                  .RegisterEndpoint(1,
                                    [&](Message&& m) {
                                      Message reply;
                                      reply.dst = m.src;
                                      reply.rpc_id = m.rpc_id;
                                      reply.payload = m.payload;
                                      transport.Send(std::move(reply)).ok();
                                    })
                  .ok());
  Mailbox mailbox(&transport, kClientIdBase);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; i++) {
        const std::string payload = std::to_string(t) + ":" + std::to_string(i);
        auto reply = mailbox.Call(1, MsgType::kPing, payload);
        if (!reply.ok() || reply->payload != payload) mismatches++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- TcpTransport --------------------------------------------------------------

TEST(TcpTransportTest, DeliversOverLocalhostSockets) {
  TcpTransport transport;  // ephemeral ports: no fixed-port collisions
  Notification got;
  std::string payload;
  ASSERT_TRUE(transport
                  .RegisterEndpoint(0,
                                    [&](Message&& m) {
                                      payload = m.payload;
                                      got.Notify();
                                    })
                  .ok());
  Message m;
  m.type = MsgType::kPing;
  m.src = 1;
  m.dst = 0;
  m.payload = "over-tcp";
  ASSERT_TRUE(transport.Send(std::move(m)).ok());
  ASSERT_TRUE(got.WaitFor(std::chrono::seconds(10)));
  EXPECT_EQ(payload, "over-tcp");
}

TEST(TcpTransportTest, LargeFrameRoundTrips) {
  TcpTransport transport;
  Notification got;
  size_t received_size = 0;
  uint32_t checksum = 0;
  ASSERT_TRUE(transport
                  .RegisterEndpoint(0,
                                    [&](Message&& m) {
                                      received_size = m.payload.size();
                                      checksum = Crc32c::Compute(m.payload);
                                      got.Notify();
                                    })
                  .ok());
  Message m;
  m.dst = 0;
  m.payload.assign(2 << 20, 'q');
  m.payload[12345] = 'Z';
  const uint32_t sent_checksum = Crc32c::Compute(m.payload);
  ASSERT_TRUE(transport.Send(std::move(m)).ok());
  ASSERT_TRUE(got.WaitFor(std::chrono::seconds(20)));
  EXPECT_EQ(received_size, 2u << 20);
  EXPECT_EQ(checksum, sent_checksum);
}

TEST(TcpTransportTest, ManyMessagesBetweenTwoEndpoints) {
  TcpTransport transport;
  CountDownLatch latch(200);
  std::atomic<uint64_t> sum{0};
  ASSERT_TRUE(transport
                  .RegisterEndpoint(0,
                                    [&](Message&& m) {
                                      sum.fetch_add(m.rpc_id);
                                      latch.CountDown();
                                    })
                  .ok());
  ASSERT_TRUE(transport.RegisterEndpoint(1, [](Message&&) {}).ok());
  uint64_t expected = 0;
  for (uint64_t i = 1; i <= 200; i++) {
    Message m;
    m.src = 1;
    m.dst = 0;
    m.rpc_id = i;
    expected += i;
    ASSERT_TRUE(transport.Send(std::move(m)).ok());
  }
  ASSERT_TRUE(latch.WaitFor(std::chrono::seconds(20)));
  EXPECT_EQ(sum.load(), expected);
}

TEST(TcpTransportTest, SendToUnknownEndpointFails) {
  // No registry dir and no local registration: the destination cannot be
  // resolved, so Send must fail fast (NotFound, no connect attempts).
  TcpTransport transport;
  Message m;
  m.dst = 9;  // never registered anywhere
  Status s = transport.Send(std::move(m));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(transport.stats().send_failures.load(), 1u);
}

}  // namespace
}  // namespace gt::rpc
