// Failure-semantics tests for the transport layer: the FaultInjectingTransport
// decorator (deterministic drop/duplicate/delay/partition per link), TCP
// reconnection after peer crashes and link kills, protocol-error handling for
// malformed peers, and engine-level tolerance of transport faults (duplicate
// delivery, links killed mid-traversal).
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "src/common/codec.h"
#include "src/common/sync.h"
#include "src/engine/backend_server.h"
#include "src/engine/client.h"
#include "src/engine/cluster.h"
#include "src/lang/gtravel.h"
#include "src/rpc/fault_transport.h"
#include "src/rpc/inproc_transport.h"
#include "src/rpc/tcp_transport.h"
#include "tests/test_util.h"

namespace gt {
namespace {

using rpc::EndpointId;
using rpc::FaultInjectingTransport;
using rpc::InProcTransport;
using rpc::kAnyEndpoint;
using rpc::LinkFault;
using rpc::Message;
using rpc::MsgType;
using rpc::TcpConfig;
using rpc::TcpTransport;

Message MakeMsg(EndpointId src, EndpointId dst, uint64_t rpc_id = 0,
                MsgType type = MsgType::kPing) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.rpc_id = rpc_id;
  m.payload = "x";
  return m;
}

// --- FaultInjectingTransport over the in-process fabric ----------------------

TEST(FaultTransportTest, BlockedLinkDropsSilently) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner);
  std::atomic<int> received{0};
  ASSERT_TRUE(faults.RegisterEndpoint(1, [&](Message&&) { received++; }).ok());

  LinkFault blocked;
  blocked.blocked = true;
  faults.SetLinkFault(0, 1, blocked);
  for (uint64_t i = 0; i < 5; i++) {
    EXPECT_TRUE(faults.Send(MakeMsg(0, 1, i)).ok());  // loss is silent
  }
  EXPECT_EQ(faults.stats().messages_dropped.load(), 5u);
  EXPECT_EQ(faults.stats().messages_sent.load(), 0u);

  // Clearing the rule restores delivery.
  faults.ClearFault(0, 1);
  Notification got;
  ASSERT_TRUE(faults.Send(MakeMsg(0, 1, 99)).ok());
  // Delivery is asynchronous; poll briefly.
  for (int i = 0; i < 200 && received.load() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(received.load(), 1);
}

TEST(FaultTransportTest, DropPatternIsDeterministicForASeed) {
  auto run = [](uint64_t seed) {
    InProcTransport inner;
    FaultInjectingTransport faults(&inner, seed);
    std::mutex mu;
    std::set<uint64_t> delivered;
    CountDownLatch done(1);  // counted down when the sentinel arrives
    EXPECT_TRUE(faults
                    .RegisterEndpoint(1,
                                      [&](Message&& m) {
                                        std::lock_guard<std::mutex> lk(mu);
                                        if (m.rpc_id == 10000) {
                                          done.CountDown();
                                          return;
                                        }
                                        delivered.insert(m.rpc_id);
                                      })
                    .ok());
    LinkFault lossy;
    lossy.drop_probability = 0.5;
    faults.SetLinkFault(0, 1, lossy);
    for (uint64_t i = 0; i < 200; i++) {
      EXPECT_TRUE(faults.Send(MakeMsg(0, 1, i)).ok());
    }
    faults.ClearFault(0, 1);
    EXPECT_TRUE(faults.Send(MakeMsg(0, 1, 10000)).ok());  // flush marker
    EXPECT_TRUE(done.WaitFor(std::chrono::seconds(10)));
    std::lock_guard<std::mutex> lk(mu);
    return delivered;
  };

  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a, b);  // same seed, same traffic -> identical survivors
  EXPECT_GT(a.size(), 0u);
  EXPECT_LT(a.size(), 200u);  // p=0.5 over 200 sends loses at least one
}

TEST(FaultTransportTest, DuplicateDeliversMessageTwice) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner);
  CountDownLatch latch(20);
  std::atomic<int> received{0};
  ASSERT_TRUE(faults
                  .RegisterEndpoint(1,
                                    [&](Message&&) {
                                      received++;
                                      latch.CountDown();
                                    })
                  .ok());
  LinkFault dup;
  dup.duplicate_probability = 1.0;
  faults.SetLinkFault(kAnyEndpoint, 1, dup);
  for (uint64_t i = 0; i < 10; i++) {
    ASSERT_TRUE(faults.Send(MakeMsg(0, 1, i)).ok());
  }
  ASSERT_TRUE(latch.WaitFor(std::chrono::seconds(10)));
  EXPECT_EQ(received.load(), 20);
  EXPECT_EQ(faults.stats().messages_duplicated.load(), 10u);
}

TEST(FaultTransportTest, DelayedLinkIsOvertakenByCleanLink) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner);
  std::mutex mu;
  std::vector<uint64_t> order;
  CountDownLatch latch(2);
  ASSERT_TRUE(faults
                  .RegisterEndpoint(1,
                                    [&](Message&& m) {
                                      std::lock_guard<std::mutex> lk(mu);
                                      order.push_back(m.rpc_id);
                                      latch.CountDown();
                                    })
                  .ok());
  LinkFault slow;
  slow.delay_us = 500000;  // 500 ms: far above in-process delivery time
  faults.SetLinkFault(0, 1, slow);

  ASSERT_TRUE(faults.Send(MakeMsg(0, 1, 111)).ok());  // delayed link
  ASSERT_TRUE(faults.Send(MakeMsg(2, 1, 222)).ok());  // clean link
  ASSERT_TRUE(latch.WaitFor(std::chrono::seconds(10)));
  std::lock_guard<std::mutex> lk(mu);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 222u);  // undelayed traffic overtakes the slow link
  EXPECT_EQ(order[1], 111u);
  const auto links = faults.LinkSnapshot();
  ASSERT_TRUE(links.count({0, 1}));
  EXPECT_EQ(links.at({0, 1}).delayed, 1u);
}

TEST(FaultTransportTest, PartitionBlocksBothDirectionsUntilHealed) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner);
  std::atomic<int> at1{0}, at2{0};
  ASSERT_TRUE(faults.RegisterEndpoint(1, [&](Message&&) { at1++; }).ok());
  ASSERT_TRUE(faults.RegisterEndpoint(2, [&](Message&&) { at2++; }).ok());

  faults.PartitionBetween({1}, {2});
  ASSERT_TRUE(faults.Send(MakeMsg(1, 2)).ok());
  ASSERT_TRUE(faults.Send(MakeMsg(2, 1)).ok());
  EXPECT_EQ(faults.stats().messages_dropped.load(), 2u);

  faults.Heal();
  ASSERT_TRUE(faults.Send(MakeMsg(1, 2)).ok());
  ASSERT_TRUE(faults.Send(MakeMsg(2, 1)).ok());
  for (int i = 0; i < 200 && (at1.load() == 0 || at2.load() == 0); i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(at1.load(), 1);
  EXPECT_EQ(at2.load(), 1);
}

TEST(FaultTransportTest, SpecificRuleBeatsWildcard) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner);
  std::atomic<int> at1{0};
  ASSERT_TRUE(faults.RegisterEndpoint(1, [&](Message&&) { at1++; }).ok());
  ASSERT_TRUE(faults.RegisterEndpoint(2, [](Message&&) {}).ok());

  LinkFault blocked;
  blocked.blocked = true;
  faults.SetLinkFault(kAnyEndpoint, kAnyEndpoint, blocked);
  faults.SetLinkFault(0, 1, LinkFault{});  // explicit clean override

  ASSERT_TRUE(faults.Send(MakeMsg(0, 1)).ok());  // specific rule: passes
  ASSERT_TRUE(faults.Send(MakeMsg(0, 2)).ok());  // wildcard: dropped
  for (int i = 0; i < 200 && at1.load() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(at1.load(), 1);
  EXPECT_EQ(faults.stats().messages_dropped.load(), 1u);
}

TEST(FaultTransportTest, OnlyTypeRestrictsTheFault) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner);
  std::atomic<int> pings{0};
  ASSERT_TRUE(faults
                  .RegisterEndpoint(1,
                                    [&](Message&& m) {
                                      if (m.type == MsgType::kPing) pings++;
                                    })
                  .ok());
  LinkFault traverse_only;
  traverse_only.blocked = true;
  traverse_only.only_type = MsgType::kTraverse;
  faults.SetLinkFault(kAnyEndpoint, kAnyEndpoint, traverse_only);

  ASSERT_TRUE(faults.Send(MakeMsg(0, 1, 1, MsgType::kTraverse)).ok());  // dropped
  ASSERT_TRUE(faults.Send(MakeMsg(0, 1, 2, MsgType::kPing)).ok());      // passes
  for (int i = 0; i < 200 && pings.load() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(pings.load(), 1);
  EXPECT_EQ(faults.stats().messages_dropped.load(), 1u);
}

// --- TCP transport failure semantics ----------------------------------------

// Dials the transport's listener like a buggy/crashing peer would.
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(TcpFaultTest, ListenerSurvivesPeerCrashMidFrame) {
  TcpTransport transport;
  std::atomic<int> received{0};
  Notification got;
  ASSERT_TRUE(transport
                  .RegisterEndpoint(0,
                                    [&](Message&&) {
                                      received++;
                                      got.Notify();
                                    })
                  .ok());
  const uint16_t port = transport.PortOf(0);
  ASSERT_NE(port, 0);

  // A peer that completes the handshake, then dies mid-frame.
  {
    int fd = RawConnect(port);
    ASSERT_GE(fd, 0);
    char hello[12];
    EncodeFixed32(hello, 0x4754524b);      // magic "GTRK"
    EncodeFixed32(hello + 4, 1);           // wire version
    EncodeFixed32(hello + 8, 0);           // dialed endpoint
    ASSERT_EQ(::send(fd, hello, sizeof(hello), 0), 12);
    char ack[4];
    ASSERT_TRUE(::recv(fd, ack, sizeof(ack), MSG_WAITALL) == 4);
    // Announce a 100-byte frame but deliver only 8 bytes, then "crash".
    char partial[12];
    EncodeFixed32(partial, 100);
    std::memset(partial + 4, 'z', 8);
    ASSERT_EQ(::send(fd, partial, sizeof(partial), 0), 12);
    ::close(fd);
  }

  // A peer that speaks garbage instead of the hello: refused, not fatal.
  {
    int fd = RawConnect(port);
    ASSERT_GE(fd, 0);
    char junk[12];
    std::memset(junk, 0xab, sizeof(junk));
    ::send(fd, junk, sizeof(junk), 0);
    char buf[4];
    EXPECT_EQ(::recv(fd, buf, sizeof(buf), MSG_WAITALL), 0);  // closed, no ack
    ::close(fd);
  }

  // The endpoint still serves well-formed traffic.
  ASSERT_TRUE(transport.Send(MakeMsg(1, 0)).ok());
  ASSERT_TRUE(got.WaitFor(std::chrono::seconds(10)));
  EXPECT_EQ(received.load(), 1);
}

TEST(TcpFaultTest, InjectedLinkKillForcesReconnect) {
  TcpTransport transport;
  CountDownLatch latch(2);
  ASSERT_TRUE(transport.RegisterEndpoint(0, [&](Message&&) { latch.CountDown(); }).ok());

  ASSERT_TRUE(transport.Send(MakeMsg(1, 0, 1)).ok());  // establishes the link
  transport.InjectLinkFailure(0);                      // half-close the cached fd
  ASSERT_TRUE(transport.Send(MakeMsg(1, 0, 2)).ok());  // must reconnect + deliver
  ASSERT_TRUE(latch.WaitFor(std::chrono::seconds(10)));
  EXPECT_GE(transport.stats().reconnects.load(), 1u);
  EXPECT_GE(transport.stats().send_failures.load(), 1u);
}

TEST(TcpFaultTest, ReconnectsThroughRegistryAfterPeerRestart) {
  gt::testing::ScopedTempDir dir;
  TcpConfig cfg;
  cfg.registry_dir = dir.sub("ports");
  cfg.connect_timeout_ms = 500;
  cfg.backoff_initial_ms = 5;
  cfg.backoff_max_ms = 50;

  TcpTransport sender(cfg);
  Notification first;
  auto receiver = std::make_unique<TcpTransport>(cfg);
  ASSERT_TRUE(receiver->RegisterEndpoint(7, [&](Message&&) { first.Notify(); }).ok());
  ASSERT_TRUE(sender.Send(MakeMsg(100, 7, 1)).ok());
  ASSERT_TRUE(first.WaitFor(std::chrono::seconds(10)));

  // Crash the peer process (transport teardown retracts its registry entry),
  // then bring up a replacement on a fresh ephemeral port.
  receiver.reset();
  Notification second;
  TcpTransport restarted(cfg);
  ASSERT_TRUE(restarted.RegisterEndpoint(7, [&](Message&&) { second.Notify(); }).ok());

  // The sender's cached connection is dead; the first write after a peer
  // crash can be buffered (at-most-once loss), so send until one arrives.
  for (int i = 0; i < 100 && !second.HasBeenNotified(); i++) {
    sender.Send(MakeMsg(100, 7, 100 + i)).ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(second.WaitFor(std::chrono::seconds(10)));
  EXPECT_GE(sender.stats().reconnects.load(), 1u);
}

// --- engine-level fault tolerance -------------------------------------------

TEST(EngineFaultTest, TraversalCompletesWhileLinksAreKilled) {
  // Mini TCP cluster, the graphtrek_server wiring: three backend servers on
  // one transport, a shared catalog, real sockets between them.
  constexpr uint32_t kServers = 3;
  gt::testing::ScopedTempDir dir;
  TcpTransport transport;
  graph::HashPartitioner partitioner(kServers);
  graph::Catalog catalog;
  std::vector<std::unique_ptr<graph::GraphStore>> stores;
  std::vector<std::unique_ptr<engine::BackendServer>> servers;
  for (uint32_t i = 0; i < kServers; i++) {
    auto store = graph::GraphStore::Open(dir.sub("s" + std::to_string(i)),
                                         graph::GraphStoreOptions{});
    ASSERT_TRUE(store.ok());
    stores.push_back(std::move(*store));
    engine::ServerConfig scfg;
    scfg.id = i;
    scfg.num_servers = kServers;
    servers.push_back(std::make_unique<engine::BackendServer>(
        scfg, stores.back().get(), &partitioner, &catalog, &transport));
    ASSERT_TRUE(servers.back()->Start().ok());
  }

  engine::GraphTrekClient client(&transport, rpc::kClientIdBase, kServers);
  for (graph::VertexId v = 0; v < 12; v++) {
    ASSERT_TRUE(client.PutVertex(v, "Node").ok());
    if (v > 0) {
      ASSERT_TRUE(client.PutEdge(v - 1, "next", v).ok());
    }
  }

  // Kill every server-to-server link before the traversal starts: the very
  // first frame on each wounded link must reconnect. Keep killing links
  // while the traversal runs to exercise reconnection mid-travel.
  for (uint32_t i = 0; i < kServers; i++) transport.InjectLinkFailure(i);

  lang::GTravel travel(&catalog);
  travel.v({0});
  for (int i = 0; i < 6; i++) travel.e("next");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());

  std::atomic<bool> done{false};
  std::thread chaos([&] {
    while (!done.load()) {
      for (uint32_t i = 0; i < kServers; i++) transport.InjectLinkFailure(i);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });
  engine::RunOptions opts;
  opts.mode = engine::EngineMode::kGraphTrek;
  auto result = client.Run(*plan, opts);
  done.store(true);
  chaos.join();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->vids, std::vector<graph::VertexId>{6});
  EXPECT_GE(transport.stats().reconnects.load(), 1u);

  for (auto& s : servers) s->Stop();
  transport.Shutdown();
}

TEST(EngineFaultTest, DuplicateTraverseDeliveryIsIdempotent) {
  // GraphTrek's travel cache absorbs re-delivered frontier hand-offs as
  // redundant visits, and the coordinator's trace registry ignores repeated
  // created/terminated events — so duplicating every kTraverse frame must
  // not change the traversal result.
  engine::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.net_faults = true;
  auto cluster = engine::Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  for (graph::VertexId v = 0; v < 10; v++) {
    ASSERT_TRUE(client->PutVertex(v, "Node").ok());
    if (v > 0) {
      ASSERT_TRUE(client->PutEdge(v - 1, "next", v).ok());
    }
  }

  LinkFault dup;
  dup.duplicate_probability = 1.0;
  dup.only_type = MsgType::kTraverse;
  (*cluster)->fault_transport()->SetLinkFault(kAnyEndpoint, kAnyEndpoint, dup);

  lang::GTravel travel((*cluster)->catalog());
  travel.v({0});
  for (int i = 0; i < 4; i++) travel.e("next");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());
  for (int run = 0; run < 3; run++) {
    auto result = (*cluster)->Run(*plan, engine::EngineMode::kGraphTrek);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->vids, std::vector<graph::VertexId>{4}) << "run " << run;
  }
  EXPECT_GT((*cluster)->fault_transport()->stats().messages_duplicated.load(), 0u);
}

}  // namespace
}  // namespace gt
