// Tests for the annotated synchronization primitives in src/common/sync.h
// (Mutex, SharedMutex, CondVar, CountDownLatch, Notification,
// BlockingCounter), concurrent TravelCache access under the engine-lock
// discipline, and the InProcTransport Send/Unregister race regression.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/engine/travel_cache.h"
#include "src/rpc/inproc_transport.h"

namespace gt {
namespace {

using namespace std::chrono_literals;

// --- Mutex / MutexLock -------------------------------------------------------

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int64_t counter = 0;  // deliberately non-atomic: the lock is the only guard
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; i++) {
        MutexLock lk(&mu);
        counter++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, ManyReadersOneWriter) {
  SharedMutex mu;
  int value = 0;
  std::atomic<int> readers_in{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; i++) {
        ReaderMutexLock lk(&mu);
        readers_in.fetch_add(1);
        EXPECT_GE(value, 0);
        readers_in.fetch_sub(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 2000; i++) {
      WriterMutexLock lk(&mu);
      EXPECT_EQ(readers_in.load(), 0);  // writers exclude all readers
      value++;
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(value, 2000);
}

TEST(SharedMutexTest, ReadersOverlapDeterministically) {
  // Two readers both inside the shared section at once: reader A enters and
  // blocks until reader B has also entered. Only shared (non-exclusive)
  // acquisition can make this handshake complete.
  SharedMutex mu;
  Notification a_in, b_in;

  std::thread a([&] {
    ReaderMutexLock lk(&mu);
    a_in.Notify();
    ASSERT_TRUE(b_in.WaitFor(5s));  // would deadlock if readers excluded
  });
  std::thread b([&] {
    a_in.Wait();
    ReaderMutexLock lk(&mu);
    b_in.Notify();
  });
  a.join();
  b.join();
}

// --- CondVar -----------------------------------------------------------------

TEST(CondVarTest, WaitWakesOnSignal) {
  Mutex mu;
  CondVar cv(&mu);
  bool ready = false;

  std::thread waker([&] {
    std::this_thread::sleep_for(10ms);
    {
      MutexLock lk(&mu);
      ready = true;
    }
    cv.Signal();
  });

  {
    MutexLock lk(&mu);
    while (!ready) cv.Wait();
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu;
  CondVar cv(&mu);
  MutexLock lk(&mu);
  EXPECT_FALSE(cv.WaitFor(5ms));  // nobody signals
}

TEST(CondVarTest, WaitUntilDeadlineLoop) {
  Mutex mu;
  CondVar cv(&mu);
  bool ready = false;
  const auto deadline = std::chrono::steady_clock::now() + 20ms;
  MutexLock lk(&mu);
  while (!ready) {
    if (!cv.WaitUntil(deadline)) break;
  }
  EXPECT_FALSE(ready);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

// --- CountDownLatch ----------------------------------------------------------

TEST(CountDownLatchTest, ReleasesWhenCountReachesZero) {
  CountDownLatch latch(3);
  EXPECT_FALSE(latch.WaitFor(1ms));

  std::vector<std::thread> threads;
  for (int i = 0; i < 3; i++) {
    threads.emplace_back([&] { latch.CountDown(); });
  }
  latch.Wait();  // must not hang
  for (auto& t : threads) t.join();
  EXPECT_TRUE(latch.WaitFor(0ms));  // stays released
}

TEST(CountDownLatchTest, BulkCountDown) {
  CountDownLatch latch(5);
  latch.CountDown(5);
  EXPECT_TRUE(latch.WaitFor(0ms));
}

// --- Notification ------------------------------------------------------------

TEST(NotificationTest, NotifyReleasesWaiters) {
  Notification n;
  EXPECT_FALSE(n.HasBeenNotified());
  EXPECT_FALSE(n.WaitFor(1ms));

  std::thread waiter([&] {
    n.Wait();
    EXPECT_TRUE(n.HasBeenNotified());
  });
  n.Notify();
  waiter.join();
  EXPECT_TRUE(n.WaitFor(0ms));
}

// --- BlockingCounter ---------------------------------------------------------

TEST(BlockingCounterTest, WaitsForAllOutstanding) {
  BlockingCounter bc;
  std::atomic<int> done{0};
  constexpr int kItems = 16;
  bc.Add(kItems);

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; i++) {
    threads.emplace_back([&] {
      for (int j = 0; j < kItems / 4; j++) {
        done.fetch_add(1);
        bc.Done();
      }
    });
  }
  bc.Wait();
  EXPECT_EQ(done.load(), kItems);
  for (auto& t : threads) t.join();
}

// --- TravelCache under the engine-lock discipline ----------------------------

// TravelCache is deliberately not internally synchronized: the BackendServer
// serializes every access under its engine mutex. Hammer it from several
// threads under one gt::Mutex the way the engine does, and check the
// owner/waiter protocol accounting stays exact.
TEST(TravelCacheConcurrencyTest, OwnerWaiterProtocolUnderSharedLock) {
  Mutex mu;
  engine::TravelCache cache(1 << 20);
  int64_t owners = 0;
  int64_t waiters_fired = 0;
  constexpr int kThreads = 4;
  constexpr int kVertices = 2000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (uint32_t vid = 0; vid < kVertices; vid++) {
        MutexLock lk(&mu);
        auto r = cache.LookupOrInsertPending(/*travel=*/1, /*step=*/0, vid);
        if (r.state == engine::TravelCache::State::kMiss) {
          // We are the owner: resolve immediately and fire waiters, exactly
          // like a worker that finished the vertex I/O.
          owners++;
          auto fired = cache.Resolve(1, 0, vid, /*reach=*/true);
          for (auto& w : fired) w(true);
        } else if (r.state == engine::TravelCache::State::kPending) {
          cache.AddWaiter(1, 0, vid, [&waiters_fired](bool reach) {
            EXPECT_TRUE(reach);
            waiters_fired++;
          });
        } else {
          EXPECT_TRUE(r.reach);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every vertex got exactly one owner, and every registered waiter fired.
  EXPECT_EQ(owners, kVertices);
  MutexLock lk(&mu);
  EXPECT_EQ(cache.size(), static_cast<size_t>(kVertices));
  EXPECT_EQ(waiters_fired, 0);  // owners resolve under the same lock hold
}

// --- InProcTransport Send/Unregister race regression -------------------------

// Regression for a use-after-free: Send() used to resolve a raw Endpoint*
// under the transport lock, drop the lock, then enqueue into the endpoint —
// racing UnregisterEndpoint() destroying that Endpoint. The fix pins the
// endpoint via shared_ptr. Without it this test crashes/races under TSan.
TEST(InProcTransportRaceTest, SendDuringUnregisterStress) {
  rpc::InProcTransport transport;
  constexpr rpc::EndpointId kDst = 7;
  constexpr rpc::EndpointId kSrc = 1;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> delivered{0};

  ASSERT_TRUE(transport.RegisterEndpoint(kSrc, [](rpc::Message&&) {}).ok());

  std::vector<std::thread> senders;
  for (int t = 0; t < 3; t++) {
    senders.emplace_back([&] {
      while (!stop.load()) {
        rpc::Message m;
        m.type = rpc::MsgType::kPing;
        m.src = kSrc;
        m.dst = kDst;
        m.payload = "x";
        transport.Send(std::move(m)).ok();  // NotFound while unregistered: fine
      }
    });
  }

  // Churn the destination endpoint: register, let traffic flow, unregister.
  for (int round = 0; round < 50; round++) {
    ASSERT_TRUE(transport
                    .RegisterEndpoint(kDst, [&](rpc::Message&&) { delivered.fetch_add(1); })
                    .ok());
    std::this_thread::sleep_for(1ms);
    transport.UnregisterEndpoint(kDst);
  }

  stop.store(true);
  for (auto& t : senders) t.join();
  transport.Shutdown();
  EXPECT_GT(delivered.load(), 0u);
}

}  // namespace
}  // namespace gt
