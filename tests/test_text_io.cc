// Tests for the portable text graph format (import/export round-trips,
// escaping, malformed-input rejection) and its end-to-end use: import a
// text graph into a cluster and traverse it.
#include <gtest/gtest.h>

#include <sstream>

#include "src/engine/cluster.h"
#include "src/gen/darshan.h"
#include "src/graph/text_io.h"
#include "src/lang/gtravel.h"
#include "tests/test_util.h"

namespace gt::graph {
namespace {

TEST(TextEscapeTest, RoundTripsAwkwardBytes) {
  // (The previous explicit-length constructor claimed 31 bytes of a 30-byte
  // literal — an out-of-bounds read the ASan leg caught.)
  std::string awkward("name with spaces\t=%\n\x01\xff binary");
  awkward += '\0';  // embedded NUL must survive the round trip too
  awkward += "tail";
  const std::string escaped = EscapeText(awkward);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('='), std::string::npos);
  auto raw = UnescapeText(escaped);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, awkward);
}

TEST(TextEscapeTest, RejectsBadEscapes) {
  EXPECT_FALSE(UnescapeText("%").ok());
  EXPECT_FALSE(UnescapeText("%2").ok());
  EXPECT_FALSE(UnescapeText("%zz").ok());
  EXPECT_TRUE(UnescapeText("%20").ok());
}

class TextIoTest : public ::testing::Test {
 protected:
  RefGraph BuildSample(Catalog* catalog) {
    RefGraph g;
    const auto user_t = catalog->Intern("User");
    const auto file_t = catalog->Intern("File");
    const auto reads = catalog->Intern("reads");
    const auto name_k = catalog->Intern("name");
    const auto size_k = catalog->Intern("size");
    const auto score_k = catalog->Intern("score");
    const auto blob_k = catalog->Intern("blob");

    VertexRecord u;
    u.id = 1;
    u.label = user_t;
    u.props.Set(name_k, PropValue("sam spade"));  // space forces escaping
    g.AddVertex(u);

    VertexRecord f;
    f.id = 2;
    f.label = file_t;
    f.props.Set(size_k, PropValue(int64_t{-123456}));
    f.props.Set(score_k, PropValue(0.125));
    f.props.Set(blob_k, PropValue(Bytes{std::string("\x00\xff\x7f", 3)}));
    g.AddVertex(f);

    EdgeRecord e;
    e.src = 1;
    e.label = reads;
    e.dst = 2;
    e.props.Set(name_k, PropValue("ts=1?%"));
    g.AddEdge(e);
    return g;
  }
};

TEST_F(TextIoTest, ExportImportRoundTrip) {
  Catalog catalog;
  RefGraph g = BuildSample(&catalog);

  std::ostringstream out;
  ASSERT_TRUE(ExportText(g, catalog, &out).ok());

  Catalog fresh;
  std::istringstream in(out.str());
  auto imported = ImportText(&in, &fresh);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  EXPECT_EQ(imported->num_vertices(), 2u);
  EXPECT_EQ(imported->num_edges(), 1u);

  const auto* u = imported->FindVertex(1);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(fresh.Name(u->label).value_or(""), "User");
  EXPECT_EQ(u->props.Find(fresh.Lookup("name"))->as_string(), "sam spade");

  const auto* f = imported->FindVertex(2);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->props.Find(fresh.Lookup("size"))->as_int(), -123456);
  EXPECT_DOUBLE_EQ(f->props.Find(fresh.Lookup("score"))->as_double(), 0.125);
  EXPECT_EQ(f->props.Find(fresh.Lookup("blob"))->as_bytes().data,
            std::string("\x00\xff\x7f", 3));

  const auto& edges = imported->Edges(1, fresh.Lookup("reads"));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].first, 2u);
  EXPECT_EQ(edges[0].second.Find(fresh.Lookup("name"))->as_string(), "ts=1?%");
}

TEST_F(TextIoTest, FileRoundTripOfGeneratedGraph) {
  gt::testing::ScopedTempDir dir;
  Catalog catalog;
  gen::DarshanConfig cfg;
  cfg.users = 8;
  cfg.files = 64;
  gen::DarshanGenerator generator(cfg);
  RefGraph g = generator.Build(&catalog);

  const std::string path = dir.sub("graph.txt");
  ASSERT_TRUE(ExportTextFile(g, catalog, path).ok());

  Catalog fresh;
  auto imported = ImportTextFile(path, &fresh);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->num_vertices(), g.num_vertices());
  EXPECT_EQ(imported->num_edges(), g.num_edges());
  EXPECT_EQ(imported->OutDegreeStats().max, g.OutDegreeStats().max);
}

TEST_F(TextIoTest, CommentsAndBlankLinesIgnored) {
  Catalog catalog;
  std::istringstream in(
      "# header comment\n"
      "\n"
      "V\t1\tNode\n"
      "# middle comment\n"
      "V\t2\tNode\tw=i:7\n"
      "E\t1\tlink\t2\n");
  auto g = ImportText(&in, &catalog);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 2u);
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST_F(TextIoTest, MalformedLinesReportLineNumbers) {
  Catalog catalog;
  const char* bad_cases[] = {
      "X\t1\tNode\n",            // unknown record
      "V\t1\n",                  // missing label
      "V\tnotanid\tNode\n",      // bad id
      "E\t1\tlink\n",            // missing dst
      "V\t1\tNode\tnoequals\n",  // bad property
      "V\t1\tNode\tk=i:12x\n",   // bad int
  };
  for (const char* text : bad_cases) {
    std::istringstream in(std::string("# ok line\n") + text);
    auto g = ImportText(&in, &catalog);
    EXPECT_FALSE(g.ok()) << text;
    EXPECT_NE(g.status().message().find("line 2"), std::string::npos) << text;
  }
}

TEST_F(TextIoTest, RejectsDanglingEdgesAndDuplicateVertices) {
  Catalog catalog;
  // Fuzz-found (gt_fuzz text_io harness): an edge whose endpoint is not in
  // the file used to import fine but counted in num_edges() while being
  // invisible to every per-vertex walk — it silently vanished on re-export.
  {
    std::istringstream in("V\t1\tNode\nE\t3\tlink\t1\n");
    auto g = ImportText(&in, &catalog);
    EXPECT_FALSE(g.ok());
    EXPECT_NE(g.status().message().find("references a vertex"), std::string::npos);
  }
  {
    std::istringstream in("V\t1\tNode\nE\t1\tlink\t9\n");
    EXPECT_FALSE(ImportText(&in, &catalog).ok());
  }
  // Edges may precede their vertices; validation happens at end of file.
  {
    std::istringstream in("E\t2\tlink\t1\nV\t1\tNode\nV\t2\tNode\n");
    auto g = ImportText(&in, &catalog);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->num_edges(), 1u);
  }
  // A duplicate vertex id would overwrite the record but leave a stale
  // type-index entry behind.
  {
    std::istringstream in("V\t1\tNode\nV\t1\tOther\n");
    auto g = ImportText(&in, &catalog);
    EXPECT_FALSE(g.ok());
    EXPECT_NE(g.status().message().find("duplicate vertex id"), std::string::npos);
  }
}

TEST_F(TextIoTest, ImportedGraphIsTraversable) {
  engine::ClusterConfig ccfg;
  ccfg.num_servers = 2;
  auto cluster = engine::Cluster::Create(ccfg);
  ASSERT_TRUE(cluster.ok());

  std::istringstream in(
      "V\t1\tUser\tname=s:sam\n"
      "V\t2\tJob\n"
      "V\t3\tFile\tname=s:out.txt\n"
      "E\t1\trun\t2\n"
      "E\t2\twrite\t3\n");
  auto g = ImportText(&in, (*cluster)->catalog());
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE((*cluster)->Load(*g).ok());

  auto plan = lang::GTravel((*cluster)->catalog()).v({1}).e("run").e("write").Build();
  ASSERT_TRUE(plan.ok());
  auto result = (*cluster)->Run(*plan, engine::EngineMode::kGraphTrek);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vids, std::vector<VertexId>{3});
}

}  // namespace
}  // namespace gt::graph
