// Travel-lifecycle tests: request-queue order-key collision regression,
// cooperative cancellation reclaim, coordinator admission control and
// server-enforced deadlines.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

// Detect ThreadSanitizer on both GCC (__SANITIZE_THREAD__) and Clang
// (__has_feature) so timing-sensitive assertions can opt out.
#if defined(__SANITIZE_THREAD__)
#define GT_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GT_UNDER_TSAN 1
#endif
#endif

#include "src/common/metrics.h"
#include "src/engine/cluster.h"
#include "src/engine/request_queue.h"
#include "src/lang/gtravel.h"

namespace gt::engine {
namespace {

using graph::Catalog;
using graph::EdgeRecord;
using graph::RefGraph;
using graph::VertexId;
using graph::VertexRecord;
using lang::GTravel;

double MetricSum(const char* name) {
  return metrics::Registry::Default()->Sum(name);
}

// --- request-queue order keys ------------------------------------------------

// Regression: the old packed order key truncated the arrival sequence to 44
// bits, so a FIFO task whose raw seq equalled a priority task's packed
// (step << 44) | seq silently overwrote it in queue_ while merge_index_
// still recorded the orphaned key. With disjoint key classes both tasks
// must coexist and both must pop.
TEST(RequestQueueTest, OrderKeysDoNotCollideAcrossClasses) {
  RequestQueue q;

  // Priority task: step 1, seq 5. Old packed key: (1 << 44) | 5.
  q.SetNextSeqForTest(5);
  q.Push(VertexTask{/*travel=*/1, /*step=*/1, /*vid=*/7, /*exec=*/11,
                    /*is_owner=*/true, /*sync=*/false},
         /*priority=*/true, /*mergeable=*/true);

  // FIFO task whose raw seq equals that packed value. Old key: (1 << 44) + 5
  // — identical, so the emplace was a silent no-op and this task vanished.
  q.SetNextSeqForTest((1ULL << 44) + 5);
  q.Push(VertexTask{/*travel=*/2, /*step=*/0, /*vid=*/9, /*exec=*/22,
                    /*is_owner=*/true, /*sync=*/false},
         /*priority=*/false, /*mergeable=*/false);

  EXPECT_EQ(q.size(), 2u);

  // Both tasks must come back out (order is irrelevant here; the pre-fix
  // bug either dropped one or died asserting in ExtractGroupLocked).
  std::vector<VertexTask> popped;
  std::vector<VertexTask> batch;
  while (q.size() > 0 && q.PopBatch(&batch)) {
    popped.insert(popped.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_NE(popped[0].travel, popped[1].travel);
}

TEST(RequestQueueTest, EraseTravelDrainsQueuedTasks) {
  RequestQueue q;
  for (uint32_t i = 0; i < 8; i++) {
    q.Push(VertexTask{/*travel=*/100, /*step=*/i % 3, /*vid=*/i, /*exec=*/i,
                      /*is_owner=*/true, /*sync=*/false},
           /*priority=*/(i % 2) == 0, /*mergeable=*/(i % 2) == 0);
  }
  for (uint32_t i = 0; i < 3; i++) {
    q.Push(VertexTask{/*travel=*/200, /*step=*/0, /*vid=*/50 + i, /*exec=*/i,
                      /*is_owner=*/true, /*sync=*/false},
           /*priority=*/false, /*mergeable=*/false);
  }
  ASSERT_EQ(q.size(), 11u);

  EXPECT_EQ(q.EraseTravel(100), 8u);
  EXPECT_EQ(q.size(), 3u);

  // The survivors all belong to the other travel, and popping them never
  // touches a dangling merge_index_ entry.
  std::vector<VertexTask> batch;
  size_t seen = 0;
  while (q.size() > 0 && q.PopBatch(&batch, /*max_frontier=*/4)) {
    for (const auto& t : batch) {
      EXPECT_EQ(t.travel, 200u);
      seen++;
    }
  }
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(q.EraseTravel(100), 0u);  // idempotent on an empty queue
}

// --- cluster-level lifecycle -------------------------------------------------

// Two-level fan-out: root 0 -> 1..fan1, each mid vertex -> fan2 distinct
// leaves. A two-hop travel from the root keeps hundreds of vertex tasks in
// flight, which (with a slow device model) pins the travel in the server
// queues long enough to observe admission rejections and cancellation.
RefGraph FanoutGraph(Catalog* catalog, uint32_t fan1, uint32_t fan2) {
  RefGraph g;
  const auto t = catalog->Intern("N");
  const auto out = catalog->Intern("out");
  const VertexId leaves_base = 1 + fan1;
  const VertexId total = leaves_base + fan1 * fan2;
  for (VertexId v = 0; v < total; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = t;
    g.AddVertex(rec);
  }
  for (VertexId mid = 1; mid <= fan1; mid++) {
    EdgeRecord e;
    e.src = 0;
    e.label = out;
    e.dst = mid;
    g.AddEdge(e);
    for (uint32_t j = 0; j < fan2; j++) {
      EdgeRecord leaf;
      leaf.src = mid;
      leaf.label = out;
      leaf.dst = leaves_base + (mid - 1) * fan2 + j;
      g.AddEdge(leaf);
    }
  }
  return g;
}

lang::TraversalPlan TwoHopPlan(Catalog* catalog) {
  auto plan = GTravel(catalog).v({0}).e("out").e("out").Build();
  EXPECT_TRUE(plan.ok());
  return *plan;
}

TEST(TravelLifecycleTest, AdmissionLimitRejectsThenBackoffRetrySucceeds) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.admission_limits = {{1, 1, 1}};  // one in-flight travel per class
  cfg.device.access_latency_us = 2000;
  // Per-vertex device charging keeps the first travel in flight while the
  // second submits (the batched-I/O paths amortize it away).
  cfg.adjacency_cache_bytes = 0;
  cfg.batched_multiget = false;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  ASSERT_TRUE((*cluster)->Load(FanoutGraph(catalog, 20, 10)).ok());
  auto plan = TwoHopPlan(catalog);

  auto holder = (*cluster)->NewClient();
  auto contender = (*cluster)->NewClient();
  RunOptions opts;  // kGraphTrek, class kNormal

  const double rejected_before = MetricSum("gt_travel_rejected_total");
  const double admitted_before = MetricSum("gt_travel_admitted_total");

  // Travel A occupies the sole kNormal slot (~200 slow vertex accesses).
  auto travel_a = holder->Submit(plan, opts);
  ASSERT_TRUE(travel_a.ok());

  // Travel B bounces off the limit with a retryable Unavailable.
  auto travel_b = contender->Submit(plan, opts);
  ASSERT_FALSE(travel_b.ok());
  EXPECT_TRUE(travel_b.status().IsUnavailable()) << travel_b.status().ToString();
  EXPECT_GE(MetricSum("gt_travel_rejected_total"), rejected_before + 1);

  // A different class has its own slot: an interactive submit is admitted
  // even while the normal slot is taken.
  RunOptions interactive = opts;
  interactive.priority = TravelClass::kInteractive;
  auto travel_c = contender->Submit(plan, interactive);
  ASSERT_TRUE(travel_c.ok()) << travel_c.status().ToString();
  auto result_c = contender->Await(*travel_c, 60000);
  ASSERT_TRUE(result_c.ok()) << result_c.status().ToString();

  auto result_a = holder->Await(*travel_a, 60000);
  ASSERT_TRUE(result_a.ok()) << result_a.status().ToString();
  EXPECT_EQ(result_a->vids.size(), 200u);

  // Run() absorbs rejections with jittered backoff: occupy the slot again,
  // then Run a contender; its resubmits land once the holder finishes.
  auto travel_d = holder->Submit(plan, opts);
  ASSERT_TRUE(travel_d.ok());
  RunOptions retry = opts;
  retry.backoff_base_ms = 5;
  auto result_e = contender->Run(plan, retry);
  ASSERT_TRUE(result_e.ok()) << result_e.status().ToString();
  EXPECT_EQ(result_e->vids.size(), 200u);
  ASSERT_TRUE(holder->Await(*travel_d, 60000).ok());

  EXPECT_GE(MetricSum("gt_travel_admitted_total"), admitted_before + 4);
}

TEST(TravelLifecycleTest, CancelledTravelIsFullyReclaimedOnEveryServer) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.device.access_latency_us = 20000;  // 20ms per vertex access
  cfg.adjacency_cache_bytes = 0;
  cfg.batched_multiget = false;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  ASSERT_TRUE((*cluster)->Load(FanoutGraph(catalog, 30, 12)).ok());
  auto plan = TwoHopPlan(catalog);

  const double cancelled_before = MetricSum("gt_travel_cancelled_total");

  // ~390 vertex accesses at 20ms across 3 servers x 2 workers: the travel
  // runs for seconds unless cancellation reclaims it.
  auto client = (*cluster)->NewClient();
  RunOptions opts;
  auto travel = client->Submit(plan, opts);
  ASSERT_TRUE(travel.ok());

  // Give up after 50ms; Await cancels the travel at its coordinator, which
  // fans kAbortTraversal out to every server.
  auto result = client->Await(*travel, 50);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout()) << result.status().ToString();

  // Every server must drain the travel's queued tasks and drop its state
  // (plans, execs, memo entries, cache residue, trace buffers).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool reclaimed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    reclaimed = true;
    for (uint32_t s = 0; s < cfg.num_servers; s++) {
      BackendServer* server = (*cluster)->server(s);
      if (server->queue_depth() != 0 || server->HasTravelResidue(*travel)) {
        reclaimed = false;
        break;
      }
    }
    if (reclaimed) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(reclaimed) << "travel state not reclaimed within 20s";
  EXPECT_GE(MetricSum("gt_travel_cancelled_total"), cancelled_before + 1);

  // The cluster keeps serving after the cancellation.
  auto after = (*cluster)->Run(TwoHopPlan(catalog), EngineMode::kGraphTrek);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->vids.size(), 360u);
}

TEST(TravelLifecycleTest, DeadlineExceededCompletesAsTimeout) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.device.access_latency_us = 20000;
  cfg.adjacency_cache_bytes = 0;
  cfg.batched_multiget = false;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  ASSERT_TRUE((*cluster)->Load(FanoutGraph(catalog, 20, 10)).ok());

  const double deadline_before = MetricSum("gt_travel_deadline_exceeded_total");

  auto client = (*cluster)->NewClient();
  RunOptions opts;
  opts.deadline_ms = 30;  // far below the ~2s the travel needs
  opts.client_timeout_ms = 30000;
  auto result = client->Run(TwoHopPlan(catalog), opts);
  ASSERT_FALSE(result.ok());
  // Timeout, not Aborted: deadline expiry must not trigger the restart
  // policy (the resubmission would blow the deadline again).
  EXPECT_TRUE(result.status().IsTimeout()) << result.status().ToString();
  EXPECT_GE(MetricSum("gt_travel_deadline_exceeded_total"), deadline_before + 1);

  // Deadline enforcement reclaims like cancellation does.
  const auto wait_until =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool drained = false;
  while (std::chrono::steady_clock::now() < wait_until) {
    drained = true;
    for (uint32_t s = 0; s < cfg.num_servers; s++) {
      if ((*cluster)->server(s)->queue_depth() != 0) {
        drained = false;
        break;
      }
    }
    if (drained) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(drained) << "queues not drained after deadline expiry";
}

}  // namespace
}  // namespace gt::engine
