// Shared test helpers.
#pragma once

#include <cstdlib>
#include <string>

#include "src/kv/env.h"

namespace gt::testing {

// Creates a unique temp directory, removed (recursively) on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    std::string tmpl = "/tmp/graphtrek-test-XXXXXX";
    char* result = ::mkdtemp(tmpl.data());
    path_ = result != nullptr ? tmpl : "/tmp/graphtrek-test-fallback";
  }
  ~ScopedTempDir() { kv::Env::Default()->RemoveDirRecursive(path_).ok(); }

  const std::string& path() const { return path_; }
  std::string sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace gt::testing
