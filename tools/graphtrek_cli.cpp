// graphtrek_cli: command-line client for a graphtrek_server cluster over
// TCP. Server ports are resolved through the shared port registry
// (--registry-dir; default /tmp/graphtrek/ports, matching the server's
// default data dir). Property values given as key=value parse as integers
// when numeric, strings otherwise.
//
//   graphtrek_cli --servers 4 put-vertex 1 User name=sam
//   graphtrek_cli --servers 4 put-edge 1 run 100 ts=1400000000
//   graphtrek_cli --servers 4 get 1
//   graphtrek_cli --servers 4 traverse 1 run,read
//   graphtrek_cli --servers 4 traverse 1 run,read --mode sync
//   graphtrek_cli --servers 4 import graph.txt
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/engine/client.h"
#include "src/engine/remote_catalog.h"
#include "src/graph/text_io.h"
#include "src/rpc/tcp_transport.h"

using namespace gt;

namespace {

graph::PropValue ParseValue(const std::string& text) {
  if (!text.empty() &&
      text.find_first_not_of("-0123456789") == std::string::npos) {
    return graph::PropValue(static_cast<int64_t>(atoll(text.c_str())));
  }
  return graph::PropValue(text);
}

engine::NamedProps ParseProps(const std::vector<std::string>& args, size_t from) {
  engine::NamedProps props;
  for (size_t i = from; i < args.size(); i++) {
    const auto eq = args[i].find('=');
    if (eq == std::string::npos) continue;
    props.emplace_back(args[i].substr(0, eq), ParseValue(args[i].substr(eq + 1)));
  }
  return props;
}

int Usage() {
  std::fprintf(stderr,
               "usage: graphtrek_cli [--servers M] [--registry-dir R] <command>\n"
               "  put-vertex <vid> <label> [k=v ...]\n"
               "  put-edge <src> <label> <dst> [k=v ...]\n"
               "  get <vid>\n"
               "  delete <vid>\n"
               "  traverse <start-vid> <label1,label2,...> [--mode sync|async|graphtrek]\n"
               "  import <graph.txt>     (text graph format, see src/graph/text_io.h)\n"
               "  catalog\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t servers = 1;
  std::string registry_dir = "/tmp/graphtrek/ports";
  std::vector<std::string> args;
  engine::EngineMode mode = engine::EngineMode::kGraphTrek;

  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--servers") == 0 && i + 1 < argc) {
      servers = static_cast<uint32_t>(atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--registry-dir") == 0 && i + 1 < argc) {
      registry_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const std::string m = argv[++i];
      mode = m == "sync"    ? engine::EngineMode::kSync
             : m == "async" ? engine::EngineMode::kAsyncPlain
                            : engine::EngineMode::kGraphTrek;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return Usage();

  rpc::TcpConfig tcfg;
  tcfg.registry_dir = registry_dir;
  rpc::TcpTransport transport(tcfg);
  // Endpoint derived from the pid so concurrent CLI invocations coexist.
  const rpc::EndpointId endpoint = 6000 + static_cast<rpc::EndpointId>(getpid() % 2000);
  engine::GraphTrekClient client(&transport, endpoint, servers);
  engine::RemoteCatalog catalog(client.mailbox(), /*authority=*/0);

  const std::string& cmd = args[0];
  if (cmd == "put-vertex" && args.size() >= 3) {
    Status s = client.PutVertex(strtoull(args[1].c_str(), nullptr, 10), args[2],
                                ParseProps(args, 3));
    std::printf("%s\n", s.ToString().c_str());
    return s.ok() ? 0 : 1;
  }
  if (cmd == "put-edge" && args.size() >= 4) {
    Status s = client.PutEdge(strtoull(args[1].c_str(), nullptr, 10), args[2],
                              strtoull(args[3].c_str(), nullptr, 10), ParseProps(args, 4));
    std::printf("%s\n", s.ToString().c_str());
    return s.ok() ? 0 : 1;
  }
  if (cmd == "delete" && args.size() >= 2) {
    Status s = client.DeleteVertex(strtoull(args[1].c_str(), nullptr, 10));
    std::printf("%s\n", s.ToString().c_str());
    return s.ok() ? 0 : 1;
  }
  if (cmd == "get" && args.size() >= 2) {
    auto rec = client.GetVertex(strtoull(args[1].c_str(), nullptr, 10));
    if (!rec.ok()) {
      std::printf("error: %s\n", rec.status().ToString().c_str());
      return 1;
    }
    if (rec->found == 0) {
      std::printf("not found\n");
      return 1;
    }
    std::printf("vertex %llu type=%s\n", (unsigned long long)rec->vid, rec->label.c_str());
    for (const auto& [key, value] : rec->props) {
      std::printf("  %s = %s\n", key.c_str(), value.ToString().c_str());
    }
    return 0;
  }
  if (cmd == "traverse" && args.size() >= 3) {
    if (!catalog.Pull().ok()) {
      std::fprintf(stderr, "catalog pull failed (is server 0 up?)\n");
      return 1;
    }
    lang::GTravel travel(&catalog);
    travel.v({strtoull(args[1].c_str(), nullptr, 10)});
    std::string labels = args[2];
    size_t pos = 0;
    while (pos != std::string::npos) {
      const size_t comma = labels.find(',', pos);
      travel.e(labels.substr(pos, comma == std::string::npos ? comma : comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
    auto plan = travel.Build();
    if (!plan.ok()) {
      std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    engine::RunOptions opts;
    opts.mode = mode;
    auto result = client.Run(*plan, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "traverse: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu vertices in %.2f ms (%s)\n", result->vids.size(),
                result->elapsed_ms, engine::EngineModeName(mode));
    for (size_t i = 0; i < result->vids.size(); i++) {
      std::printf("%llu%s", (unsigned long long)result->vids[i],
                  (i + 1) % 10 == 0 || i + 1 == result->vids.size() ? "\n" : " ");
    }
    return 0;
  }
  if (cmd == "import" && args.size() >= 2) {
    graph::Catalog scratch;
    auto g = graph::ImportTextFile(args[1], &scratch);
    if (!g.ok()) {
      std::fprintf(stderr, "import: %s\n", g.status().ToString().c_str());
      return 1;
    }
    uint64_t vertices = 0, edges = 0;
    for (const auto& [vid, rec] : g->vertices()) {
      engine::NamedProps props;
      for (const auto& [key, value] : rec.props) {
        props.emplace_back(scratch.Name(key).value_or("?"), value);
      }
      Status s = client.PutVertex(vid, scratch.Name(rec.label).value_or("?"), props);
      if (!s.ok()) {
        std::fprintf(stderr, "put-vertex %llu: %s\n", (unsigned long long)vid,
                     s.ToString().c_str());
        return 1;
      }
      vertices++;
      for (uint32_t label = 0; label < scratch.size(); label++) {
        for (const auto& [dst, eprops] : g->Edges(vid, label)) {
          engine::NamedProps named;
          for (const auto& [key, value] : eprops) {
            named.emplace_back(scratch.Name(key).value_or("?"), value);
          }
          Status es = client.PutEdge(vid, scratch.Name(label).value_or("?"), dst, named);
          if (!es.ok()) {
            std::fprintf(stderr, "put-edge: %s\n", es.ToString().c_str());
            return 1;
          }
          edges++;
        }
      }
    }
    std::printf("imported %llu vertices, %llu edges\n", (unsigned long long)vertices,
                (unsigned long long)edges);
    return 0;
  }
  if (cmd == "catalog") {
    if (!catalog.Pull().ok()) {
      std::fprintf(stderr, "catalog pull failed\n");
      return 1;
    }
    for (uint32_t id = 0; id < catalog.size(); id++) {
      std::printf("%4u %s\n", id, catalog.Name(id).value_or("?").c_str());
    }
    return 0;
  }
  return Usage();
}
