// graphtrek_server: standalone backend-server daemon. Each instance owns
// one shard of the property graph and speaks the GraphTrek protocol over
// TCP on an ephemeral 127.0.0.1 port published in the shared port registry
// (--registry-dir, one small file per endpoint). Server 0 is the catalog
// authority; the others replicate name/id bindings from it at startup and
// on demand.
//
//   graphtrek_server --id 0 --servers 4 --data-dir /tmp/gt
//
// Run one process per server id (same --registry-dir, default
// <data-dir>/ports), then drive the cluster with graphtrek_cli.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "src/common/device_model.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/engine/backend_server.h"
#include "src/engine/remote_catalog.h"
#include "src/rpc/tcp_transport.h"

using namespace gt;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

struct Flags {
  uint32_t id = 0;
  uint32_t servers = 1;
  std::string registry_dir;  // default: <data_dir>/ports
  std::string data_dir = "/tmp/graphtrek";
  uint32_t workers = 2;
  uint32_t access_us = 0;
  uint32_t warm_us = 0;
  // fdatasync the KV write-ahead log before acking each write. Off by
  // default (matching kv::DBOptions): crash recovery then rolls back to a
  // consistent earlier state instead of guaranteeing every acked write.
  bool sync_wal = false;
  // Print the full Prometheus exposition on clean shutdown.
  bool metrics_dump = false;
  // Seconds between one-line metrics summaries in the log (0 disables).
  uint32_t metrics_interval_s = 30;
  // Coordinator admission: cap on concurrently in-flight travels (0 = off).
  uint32_t max_inflight = 4096;
  // Maintenance tick period (trace flush + failure/deadline detection).
  uint32_t maintenance_interval_ms = 5;
};

bool ParseFlags(int argc, char** argv, Flags* out) {
  for (int i = 1; i < argc; i++) {
    auto need = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        exit(2);
      }
      return argv[++i];
    };
    if (const char* v = need("--id")) {
      out->id = static_cast<uint32_t>(atoi(v));
    } else if (const char* v2 = need("--servers")) {
      out->servers = static_cast<uint32_t>(atoi(v2));
    } else if (const char* v3 = need("--registry-dir")) {
      out->registry_dir = v3;
    } else if (const char* v4 = need("--data-dir")) {
      out->data_dir = v4;
    } else if (const char* v5 = need("--workers")) {
      out->workers = static_cast<uint32_t>(atoi(v5));
    } else if (const char* v6 = need("--access-us")) {
      out->access_us = static_cast<uint32_t>(atoi(v6));
    } else if (const char* v7 = need("--warm-us")) {
      out->warm_us = static_cast<uint32_t>(atoi(v7));
    } else if (const char* v8 = need("--metrics-interval-s")) {
      out->metrics_interval_s = static_cast<uint32_t>(atoi(v8));
    } else if (const char* v9 = need("--max-inflight")) {
      out->max_inflight = static_cast<uint32_t>(atoi(v9));
    } else if (const char* v10 = need("--maintenance-interval-ms")) {
      out->maintenance_interval_ms = static_cast<uint32_t>(atoi(v10));
    } else if (std::strcmp(argv[i], "--sync-wal") == 0) {
      out->sync_wal = true;
    } else if (std::strcmp(argv[i], "--metrics-dump") == 0) {
      out->metrics_dump = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

// Catalog replica endpoints live above the server-id range.
constexpr rpc::EndpointId kCatalogEndpointBase = 5000;

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: graphtrek_server --id N --servers M [--registry-dir R] "
                 "[--data-dir D] [--workers W] [--access-us U] [--warm-us U] "
                 "[--sync-wal] [--metrics-dump] [--metrics-interval-s S] "
                 "[--max-inflight N] [--maintenance-interval-ms M]\n");
    return 2;
  }
  Logger::SetLevel(LogLevel::kInfo);

  rpc::TcpConfig tcfg;
  tcfg.registry_dir =
      flags.registry_dir.empty() ? flags.data_dir + "/ports" : flags.registry_dir;
  rpc::TcpTransport transport(tcfg);

  // Catalog: server 0 is the authority; others replicate through it.
  graph::Catalog local_catalog;
  std::unique_ptr<rpc::Mailbox> catalog_mailbox;
  std::unique_ptr<engine::RemoteCatalog> remote_catalog;
  graph::Catalog* catalog = &local_catalog;
  if (flags.id != 0) {
    catalog_mailbox = std::make_unique<rpc::Mailbox>(&transport,
                                                     kCatalogEndpointBase + flags.id);
    remote_catalog = std::make_unique<engine::RemoteCatalog>(catalog_mailbox.get(), 0);
    // Warm the replica; retry while the authority comes up.
    for (int attempt = 0; attempt < 60; attempt++) {
      if (remote_catalog->Pull().ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
    catalog = remote_catalog.get();
  }

  DeviceModel device(DeviceModelConfig{.access_latency_us = flags.access_us,
                                       .per_kib_us = 0,
                                       .warm_latency_us = flags.warm_us});
  graph::GraphStoreOptions sopts;
  sopts.device = flags.access_us > 0 ? &device : nullptr;
  sopts.server_id = flags.id;
  sopts.db.sync_wal = flags.sync_wal;
  auto store = graph::GraphStore::Open(
      flags.data_dir + "/s" + std::to_string(flags.id), sopts);
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }

  graph::HashPartitioner partitioner(flags.servers);
  engine::ServerConfig scfg;
  scfg.id = flags.id;
  scfg.num_servers = flags.servers;
  scfg.workers = flags.workers;
  scfg.max_inflight_travels = flags.max_inflight;
  scfg.maintenance_interval_ms = flags.maintenance_interval_ms;
  engine::BackendServer server(scfg, store->get(), &partitioner, catalog, &transport);
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("graphtrek_server %u/%u listening on 127.0.0.1:%u (registry: %s, data: %s)\n",
              flags.id, flags.servers, transport.PortOf(flags.id),
              tcfg.registry_dir.c_str(), flags.data_dir.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  auto* registry = metrics::Registry::Default();
  uint64_t ticks = 0;
  const uint64_t ticks_per_report =
      static_cast<uint64_t>(flags.metrics_interval_s) * 10;  // 100ms per tick
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (ticks_per_report != 0 && ++ticks % ticks_per_report == 0) {
      GT_INFO << "metrics: travels=" << registry->Sum("gt_travel_completed_total")
              << " visits=" << registry->Sum("gt_engine_visits_received_total")
              << " real_io=" << registry->Sum("gt_engine_visits_real_io_total")
              << " rpc_sent=" << registry->Sum("gt_rpc_messages_sent_total")
              << " rpc_reconnects=" << registry->Sum("gt_rpc_reconnects_total")
              << " kv_gets=" << registry->Sum("gt_kv_gets_total")
              << " wal_fsyncs=" << registry->Sum("gt_kv_wal_fsyncs_total");
    }
  }
  std::printf("graphtrek_server %u shutting down\n", flags.id);
  if (flags.metrics_dump) {
    // Scrape before Stop(): the server/transport collectors deregister on
    // shutdown, after which their families would vanish from the exposition.
    std::fputs(registry->Expose("gt_").c_str(), stdout);
    std::fflush(stdout);
  }
  server.Stop();
  return 0;
}
