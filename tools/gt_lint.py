#!/usr/bin/env python3
"""Repo lint gate for GraphTrek's concurrency rules.

Checks (all scoped to src/):
  1. Raw synchronization primitives (std::mutex, std::lock_guard,
     std::unique_lock, std::scoped_lock, std::shared_mutex, std::shared_lock,
     std::condition_variable and their headers) are allowed only in
     src/common/sync.h. Everything else must use the annotated gt::Mutex /
     gt::MutexLock / gt::CondVar wrappers so Clang Thread Safety Analysis
     (-DGT_ANALYZE=ON) sees every lock.
  2. Naked std::thread is allowed only in the sanctioned thread owners:
     the thread pool and the transport listener/delivery/timer loops.
  3. The #include graph over "src/..." headers must be acyclic.
  4. Direct POSIX file-system calls (::open, ::rename, ::fsync, ...) are
     allowed only in src/kv/env.cc. The rest of src/kv must go through the
     Env interface, or crash-fault injection (CrashFaultEnv) cannot see the
     operation and the durability rules in DESIGN.md cannot be enforced.
  5. Ad-hoc console output (std::cout/std::cerr, bare printf, fprintf to
     stdout/stderr, puts/fputs to the standard streams) is banned in src/:
     diagnostics go through src/common/logging.cc (GT_INFO/GT_WARN/...) and
     statistics go through the metrics registry (src/common/metrics.cc),
     whose exposition the tools/benches print. Hand-rolled stat dumps
     bit-rot and fork the observability story.
  6. Raw KV reads (db()->Get / db()->ScanPrefix / db()->NewIterator) are
     banned in src/engine: traversal hot paths must go through the
     GraphStore batch/cache APIs (GetVertex, MultiGetVertices, ScanEdges,
     ScanAllEdges, ScanVerticesByType) so every access flows through the
     adjacency cache, the device-model charge, and the access interceptor.
     A per-vertex db()->ScanPrefix in the engine silently bypasses all
     three and the evaluation numbers stop meaning anything.
  7. Travel-keyed containers in src/engine (std::map / std::unordered_map
     with a TravelId key) must have a matching `<member>.erase(` somewhere
     in src/engine. Per-travel state with no erase path is exactly the
     orphaned-travel bug class the abort/cancellation protocol exists to
     prevent: the map grows forever once clients time out or cancel.
  8. Decode discipline in the wire/storage decode dirs (src/rpc, src/kv,
     src/lang): raw byte decoding — DecodeFixed*(ptr), memcpy, or
     reinterpret_cast — is banned outside the bounds-checked CheckedReader
     (src/common/codec.h); pointer-arithmetic decodes are exactly where the
     OOB/overflow bugs on untrusted input live. The sockaddr casts that the
     socket API forces on tcp_transport.cc are allowlisted. Additionally,
     every Decode* function defined in those dirs must return Status,
     Result<...> or bool — malformed input must surface as a value the
     caller checks, never as an assert or a void best-effort parse.
  9. Reader discipline in the same dirs plus the payload codecs in
     src/engine/types.h: every Decode* body must read through a
     CheckedReader (parameter, local construction, or delegation to another
     Decode*). New plan/payload fields — the versioned ext tails in
     particular — must never grow a hand-walked byte read.
  10. (warn-only) clang-format clean-ness of files changed vs HEAD, when
     clang-format is installed.

Exit status: 0 when checks 1-9 pass; 1 otherwise. Check 10 never fails the
run — it only prints warnings.
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

# The one file allowed to own raw primitives.
SYNC_H = "src/common/sync.h"

# Sanctioned owners of raw std::thread (long-lived I/O loops that cannot run
# on a pool: they block in accept()/recv()/timed waits for their whole life).
THREAD_ALLOWLIST = {
    "src/common/thread_pool.h",
    "src/common/thread_pool.cc",
    "src/rpc/inproc_transport.h",
    "src/rpc/inproc_transport.cc",
    "src/rpc/tcp_transport.h",
    "src/rpc/tcp_transport.cc",
    "src/rpc/fault_transport.h",
    "src/rpc/fault_transport.cc",
}

PRIMITIVE_RE = re.compile(
    r"std::(mutex|lock_guard|unique_lock|scoped_lock|shared_mutex|shared_lock|"
    r"condition_variable(_any)?)\b"
)
PRIMITIVE_INCLUDE_RE = re.compile(r'#\s*include\s*<(mutex|condition_variable|shared_mutex)>')
# std::thread but not std::this_thread.
THREAD_RE = re.compile(r"std::thread\b")
INCLUDE_RE = re.compile(r'#\s*include\s*"(src/[^"]+)"')

# The files allowed to write to the standard streams: the logger's sink and
# the registry's exposition formatter.
CONSOLE_ALLOWLIST = {
    "src/common/logging.cc",
    "src/common/metrics.cc",
}
CONSOLE_RE = re.compile(
    r"std::c(?:out|err)\b"
    r"|(?<![\w:])(?:std::)?printf\s*\("
    r"|(?<![\w:])(?:std::)?fprintf\s*\(\s*(?:stdout|stderr)\b"
    r"|(?<![\w:])(?:std::)?puts\s*\("
    r"|(?<![\w:])(?:std::)?fputs\s*\([^()\n]*,\s*(?:stdout|stderr)\s*\)"
)

# The one file in src/kv allowed to call the kernel directly.
KV_ENV_CC = "src/kv/env.cc"
# Globally-qualified POSIX file-system calls. The lookbehind keeps
# qualified names like std::remove from matching.
POSIX_FS_RE = re.compile(
    r"(?<![\w:])::(open|openat|close|read|write|pread|pwrite|lseek|rename|renameat|"
    r"unlink|unlinkat|remove|truncate|ftruncate|fsync|fdatasync|sync_file_range|"
    r"mkdir|rmdir|opendir|readdir|closedir|stat|fstat|lstat|access)\s*\("
)


def strip_comments(text):
    """Removes // and /* */ comments and string literals (crudely but enough
    for token matching; keeps line structure so line numbers stay right)."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"':
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
        elif c == "'":
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def src_files():
    for root, _dirs, names in os.walk(SRC):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                path = os.path.join(root, name)
                yield os.path.relpath(path, REPO).replace(os.sep, "/")


def check_primitives(files):
    errors = []
    for rel in files:
        if rel == SYNC_H:
            continue
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            text = strip_comments(f.read())
        for lineno, line in enumerate(text.splitlines(), 1):
            m = PRIMITIVE_RE.search(line) or PRIMITIVE_INCLUDE_RE.search(line)
            if m:
                errors.append(
                    f"{rel}:{lineno}: raw primitive '{m.group(0).strip()}' — use the "
                    f"annotated wrappers from {SYNC_H} instead"
                )
    return errors


def check_threads(files):
    errors = []
    for rel in files:
        if rel in THREAD_ALLOWLIST:
            continue
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            text = strip_comments(f.read())
        for lineno, line in enumerate(text.splitlines(), 1):
            # Mask std::this_thread before looking for std::thread.
            masked = line.replace("std::this_thread", "")
            if THREAD_RE.search(masked):
                errors.append(
                    f"{rel}:{lineno}: naked std::thread — submit work to gt::ThreadPool "
                    f"(or add the file to THREAD_ALLOWLIST with justification)"
                )
    return errors


def check_kv_posix(files):
    errors = []
    for rel in files:
        if not rel.startswith("src/kv/") or rel == KV_ENV_CC:
            continue
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            text = strip_comments(f.read())
        for lineno, line in enumerate(text.splitlines(), 1):
            m = POSIX_FS_RE.search(line)
            if m:
                errors.append(
                    f"{rel}:{lineno}: direct POSIX call '::{m.group(1)}' — go through "
                    f"Env (only {KV_ENV_CC} may touch the kernel, so fault injection "
                    f"sees every file operation)"
                )
    return errors


def check_console_output(files):
    errors = []
    for rel in files:
        if rel in CONSOLE_ALLOWLIST:
            continue
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            text = strip_comments(f.read())
        for lineno, line in enumerate(text.splitlines(), 1):
            m = CONSOLE_RE.search(line)
            if m:
                errors.append(
                    f"{rel}:{lineno}: ad-hoc console output '{m.group(0).strip()}' — "
                    f"log through GT_INFO/GT_WARN and report statistics through the "
                    f"metrics registry (src/common/metrics.h)"
                )
    return errors


# Raw KV read entry points the engine must not call (writes are fine: the
# engine has no KV write path, mutations go through GraphStore).
ENGINE_RAW_KV_RE = re.compile(r"\bdb\s*\(\s*\)\s*->\s*(Get|MultiGet|ScanPrefix|NewIterator)\b")


def check_engine_raw_kv(files):
    errors = []
    for rel in files:
        if not rel.startswith("src/engine/"):
            continue
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            text = strip_comments(f.read())
        for lineno, line in enumerate(text.splitlines(), 1):
            m = ENGINE_RAW_KV_RE.search(line)
            if m:
                errors.append(
                    f"{rel}:{lineno}: raw KV read 'db()->{m.group(1)}' in the engine — "
                    f"use the GraphStore batch/cache APIs (GetVertex, MultiGetVertices, "
                    f"ScanEdges/ScanAllEdges, ScanVerticesByType) so the adjacency "
                    f"cache, device charge and access interceptor see the access"
                )
    return errors


# Travel-keyed container member declarations in src/engine. Non-greedy up
# to the closing '>' directly before the member name; tolerates nested
# template args, a GT_GUARDED_BY annotation and multi-line declarations.
TRAVEL_MAP_RE = re.compile(
    r"std::(?:unordered_)?map<\s*TravelId\s*,[^;]*?>\s*"
    r"(\w+_)\s*(?:GT_GUARDED_BY\([^)]*\))?\s*;",
    re.DOTALL,
)


def check_travel_map_reclaim(files):
    """Every per-travel map in the engine needs an erase path (check 7)."""
    engine_files = [rel for rel in files if rel.startswith("src/engine/")]
    texts = {}
    for rel in engine_files:
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            texts[rel] = strip_comments(f.read())

    errors = []
    for rel, text in texts.items():
        for m in TRAVEL_MAP_RE.finditer(text):
            member = m.group(1)
            erase_re = re.compile(r"\b" + re.escape(member) + r"\s*\.\s*erase\s*\(")
            if any(erase_re.search(t) for t in texts.values()):
                continue
            lineno = text.count("\n", 0, m.start()) + 1
            errors.append(
                f"{rel}:{lineno}: travel-keyed map '{member}' has no "
                f"'{member}.erase(' anywhere in src/engine — per-travel state "
                f"must be reclaimed on the abort/cancellation path or it leaks "
                f"once clients time out (see DESIGN.md 'Travel lifecycle')"
            )
    return errors


# Directories whose inputs arrive over the wire or from disk: every byte
# read there is untrusted until a bounds check has seen it.
DECODE_DIRS = ("src/rpc/", "src/kv/", "src/lang/")

# Raw byte-decoding tokens banned in DECODE_DIRS (check 8). CheckedReader
# (src/common/codec.h) owns the only sanctioned pointer arithmetic.
RAW_DECODE_PATTERNS = [
    (re.compile(r"\bDecodeFixed(?:32|64)(?:BE)?\s*\("), "raw DecodeFixed"),
    (re.compile(r"(?<![\w:])(?:std::)?memcpy\s*\("), "memcpy"),
    (re.compile(r"\breinterpret_cast\s*<"), "reinterpret_cast"),
]

# The socket API (bind/connect/accept/getsockname) forces sockaddr casts;
# they cast our own stack structs, not untrusted payload bytes.
SOCKADDR_CAST_FILE = "src/rpc/tcp_transport.cc"

# A Decode* function definition or declaration: optional specifiers, a
# return type, then an (optionally class-qualified) Decode\w* name followed
# by '('. Anchored at a statement boundary so call sites don't match.
DECODE_DEF_RE = re.compile(
    r"(?:^|[;{}\n])\s*"
    r"(?:template\s*<[^\n>]*>\s*)?"
    r"(?:static\s+|inline\s+|virtual\s+|constexpr\s+|\[\[nodiscard\]\]\s+)*"
    r"(?P<ret>[A-Za-z_][\w:]*(?:<[^;(){}]*>)?)\s*[&*]?\s+"
    r"(?P<name>(?:[A-Za-z_]\w*::)*Decode\w*)\s*\("
)
DECODE_RET_ALLOWED_RE = re.compile(r"^(?:gt::)?(?:Status|Result<.+>|bool)$")
CPP_KEYWORDS = {
    "return", "co_return", "if", "while", "for", "else", "case", "switch",
    "new", "delete", "throw", "goto", "do", "using", "typedef",
}


def check_decode_discipline(files):
    """Checked-reader decode discipline in src/rpc, src/kv, src/lang (check 8)."""
    errors = []
    for rel in files:
        if not rel.startswith(DECODE_DIRS):
            continue
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            text = strip_comments(f.read())
        for lineno, line in enumerate(text.splitlines(), 1):
            for pat, what in RAW_DECODE_PATTERNS:
                m = pat.search(line)
                if not m:
                    continue
                if (rel == SOCKADDR_CAST_FILE and what == "reinterpret_cast"
                        and "sockaddr" in line):
                    continue
                errors.append(
                    f"{rel}:{lineno}: {what} in a decode dir — untrusted byte "
                    f"decoding must go through gt::CheckedReader "
                    f"(src/common/codec.h) so every read is bounds-checked"
                )
        for m in DECODE_DEF_RE.finditer(text):
            ret = m.group("ret")
            if ret in CPP_KEYWORDS or DECODE_RET_ALLOWED_RE.match(ret):
                continue
            lineno = text.count("\n", 0, m.start("name")) + 1
            errors.append(
                f"{rel}:{lineno}: decoder '{m.group('name')}' returns '{ret}' — "
                f"Decode* functions in the decode dirs must return Status, "
                f"Result<...> or bool so malformed input surfaces as a checkable "
                f"value, never as an assert or a silent best-effort parse"
            )
    return errors


# The RPC payload codecs live in src/engine/types.h, outside the decode
# dirs, but decode the same untrusted frames — the reader-discipline check
# below covers them too.
DECODE_READER_EXTRA_FILES = ("src/engine/types.h",)

# A body "uses a checked reader" when it names CheckedReader (constructs one
# or threads one through) or delegates to another Decode*/Get* helper that
# owns the checking.
DECODE_READER_RE = re.compile(r"\bCheckedReader\b")
DECODE_DELEGATE_RE = re.compile(r"\b\w*Decode\w*\s*\(")


def _function_body(text, open_paren):
    """Returns (params, body, has_body) for the definition whose parameter
    list opens at text[open_paren] == '('. Declarations (';' before '{')
    return has_body=False."""
    depth = 0
    i = open_paren
    n = len(text)
    while i < n:
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    params = text[open_paren + 1:i]
    i += 1
    while i < n and text[i] not in "{;":
        i += 1
    if i >= n or text[i] == ";":
        return params, "", False
    start = i + 1
    depth = 1
    i = start
    while i < n and depth:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    return params, text[start:i - 1], True


def check_decode_reader(files):
    """Every Decode* body in the decode dirs (and the payload codecs in
    src/engine/types.h) must read bytes through a CheckedReader — either
    taking one as a parameter, constructing one locally, or delegating to
    another Decode* that does. A decoder that walks the input by hand is
    exactly how a new plan/payload field grows an unchecked read."""
    errors = []
    for rel in files:
        if not (rel.startswith(DECODE_DIRS) or rel in DECODE_READER_EXTRA_FILES):
            continue
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            text = strip_comments(f.read())
        for m in DECODE_DEF_RE.finditer(text):
            params, body, has_body = _function_body(text, m.end() - 1)
            if not has_body:
                continue  # declaration: the definition is checked where it lives
            if DECODE_READER_RE.search(params) or DECODE_READER_RE.search(body):
                continue
            if DECODE_DELEGATE_RE.search(body):
                continue  # delegates to another Decode*, which owns the checking
            lineno = text.count("\n", 0, m.start("name")) + 1
            errors.append(
                f"{rel}:{lineno}: decoder '{m.group('name')}' reads its input "
                f"without a CheckedReader — take one as a parameter, construct "
                f"one over the buffer, or delegate to a Decode* helper that "
                f"does; hand-walked bytes are unchecked bytes"
            )
    return errors


def check_include_cycles(files):
    graph = {}
    for rel in files:
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            text = f.read()
        graph[rel] = [inc for inc in INCLUDE_RE.findall(text) if inc != rel]

    errors = []
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {rel: WHITE for rel in graph}
    stack = []

    def dfs(node):
        color[node] = GRAY
        stack.append(node)
        for dep in graph.get(node, []):
            if dep not in graph:
                continue  # e.g. generated or non-src header
            if color[dep] == GRAY:
                cycle = stack[stack.index(dep):] + [dep]
                errors.append("include cycle: " + " -> ".join(cycle))
            elif color[dep] == WHITE:
                dfs(dep)
        stack.pop()
        color[node] = BLACK

    for rel in graph:
        if color[rel] == WHITE:
            dfs(rel)
    return errors


def warn_format():
    """Warn-only: clang-format check over files changed vs HEAD."""
    try:
        subprocess.run(["clang-format", "--version"], capture_output=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return  # not installed: silently skip (the CI gate notes this)
    try:
        out = subprocess.run(
            ["git", "diff", "--name-only", "HEAD", "--", "src", "tests", "bench",
             "examples", "tools"],
            capture_output=True, check=True, cwd=REPO, text=True)
    except (OSError, subprocess.CalledProcessError):
        return
    for rel in out.stdout.split():
        if not rel.endswith((".h", ".cc")):
            continue
        path = os.path.join(REPO, rel)
        if not os.path.exists(path):
            continue
        r = subprocess.run(["clang-format", "--dry-run", "-Werror", path],
                           capture_output=True)
        if r.returncode != 0:
            print(f"warning: {rel} is not clang-format clean", file=sys.stderr)


def main():
    files = list(src_files())
    errors = []
    errors += check_primitives(files)
    errors += check_threads(files)
    errors += check_kv_posix(files)
    errors += check_console_output(files)
    errors += check_engine_raw_kv(files)
    errors += check_travel_map_reclaim(files)
    errors += check_decode_discipline(files)
    errors += check_decode_reader(files)
    errors += check_include_cycles(files)
    warn_format()
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        print(f"gt_lint: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"gt_lint: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
