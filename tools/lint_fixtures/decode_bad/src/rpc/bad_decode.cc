// Lint self-test fixture: every construct in this file must be flagged by
// gt_lint check 8 (decode discipline). Never compiled — only linted.
#include <cstring>

namespace gt {

// Raw pointer decode: DecodeFixed on an unchecked cursor.
unsigned ReadLen(const char* p) { return DecodeFixed32(p); }

// memcpy-based field extraction.
void ReadField(const char* p, unsigned* out) { std::memcpy(out, p, 4); }

// Type-punning a wire buffer.
const unsigned* Punned(const char* p) {
  return reinterpret_cast<const unsigned*>(p);
}

// A decoder that cannot report failure.
void DecodeHeader(const char* p, unsigned* type) { *type = DecodeFixed32(p); }

// A decoder that walks the wire buffer by hand: no CheckedReader in sight
// and no delegation to one (check 9).
bool DecodeTail(const char* p, unsigned n, unsigned* out) {
  unsigned v = 0;
  for (unsigned i = 0; i < n; i++) v = (v << 8) | (unsigned char)p[i];
  *out = v;
  return true;
}

}  // namespace gt
