// Lint self-test fixture: every construct in this file must be flagged by
// gt_lint check 8 (decode discipline). Never compiled — only linted.
#include <cstring>

namespace gt {

// Raw pointer decode: DecodeFixed on an unchecked cursor.
unsigned ReadLen(const char* p) { return DecodeFixed32(p); }

// memcpy-based field extraction.
void ReadField(const char* p, unsigned* out) { std::memcpy(out, p, 4); }

// Type-punning a wire buffer.
const unsigned* Punned(const char* p) {
  return reinterpret_cast<const unsigned*>(p);
}

// A decoder that cannot report failure.
void DecodeHeader(const char* p, unsigned* type) { *type = DecodeFixed32(p); }

}  // namespace gt
