// Lint self-test fixture: check 8 must accept everything in this file.
// Never compiled — only linted.
namespace gt {

struct Status {};
class CheckedReader {};

// Bounds-checked decode returning Status: the sanctioned shape.
Status DecodeHeader(CheckedReader* r) { return Status(); }

// Result<...> and bool returns are also sanctioned.
template <typename T>
struct Result {};
Result<int> DecodeBody(CheckedReader* r) { return Result<int>(); }
static bool DecodeEntries(CheckedReader* r) { return true; }

// A call site mentioning a decoder is not a definition.
Status Caller(CheckedReader* r) { return DecodeHeader(r); }

// Raw-bytes entry point that constructs its own reader (check 9's
// sanctioned shape for top-level decoders).
struct StringView {};
Status DecodeFrame(StringView data) {
  CheckedReader reader;
  return DecodeHeader(&reader);
}

// Delegation without a local reader: the callee owns the checking.
static bool DecodeOuter(CheckedReader* r) { return DecodeEntries(r); }

// A declaration is checked where it is defined, not here.
Status DecodeElsewhere(StringView data);

// 'DecodeFixed32' in a comment or string must not trip the token scan:
// DecodeFixed32(p) — documented here on purpose.
const char* kDoc = "memcpy(dst, src, n) is banned; reinterpret_cast<T*> too";

}  // namespace gt
