// Lint self-test fixture: check 8 must accept everything in this file.
// Never compiled — only linted.
namespace gt {

struct Status {};
class CheckedReader {};

// Bounds-checked decode returning Status: the sanctioned shape.
Status DecodeHeader(CheckedReader* r) { return Status(); }

// Result<...> and bool returns are also sanctioned.
template <typename T>
struct Result {};
Result<int> DecodeBody(CheckedReader* r) { return Result<int>(); }
static bool DecodeEntries(CheckedReader* r) { return true; }

// A call site mentioning a decoder is not a definition.
Status Caller(CheckedReader* r) { return DecodeHeader(r); }

// 'DecodeFixed32' in a comment or string must not trip the token scan:
// DecodeFixed32(p) — documented here on purpose.
const char* kDoc = "memcpy(dst, src, n) is banned; reinterpret_cast<T*> too";

}  // namespace gt
