// Lint self-test fixture: the sockaddr casts the socket API forces on
// tcp_transport.cc are allowlisted in check 8. Never compiled — only linted.
struct sockaddr;
struct sockaddr_in {};

int Bind(int fd, const sockaddr_in& addr) {
  const sockaddr* sa = reinterpret_cast<const sockaddr*>(&addr);
  return sa != nullptr ? 0 : -1;
}
