#!/usr/bin/env python3
"""Self-test for gt_lint.py's decode-discipline check (check 8).

Points the linter at the fixture trees under tools/lint_fixtures/ and asserts
that every banned construct in decode_bad/ is flagged while decode_good/
(including the allowlisted tcp_transport.cc sockaddr cast) comes back clean.
Registered as the 'gt_lint_selftest' ctest so a regression in the lint rules
fails the suite, not just the next human who runs the linter by hand.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import gt_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "lint_fixtures")

failures = []


def run_on(tree):
    """Runs the decode checks (8 and 9) with REPO/SRC pointed at a fixture
    tree."""
    old_repo, old_src = gt_lint.REPO, gt_lint.SRC
    gt_lint.REPO = os.path.join(FIXTURES, tree)
    gt_lint.SRC = os.path.join(gt_lint.REPO, "src")
    try:
        files = list(gt_lint.src_files())
        return (gt_lint.check_decode_discipline(files)
                + gt_lint.check_decode_reader(files))
    finally:
        gt_lint.REPO, gt_lint.SRC = old_repo, old_src


def expect(cond, label):
    if cond:
        print(f"ok: {label}")
    else:
        failures.append(label)
        print(f"FAIL: {label}", file=sys.stderr)


def main():
    bad = run_on("decode_bad")
    expect(any("raw DecodeFixed" in e for e in bad), "decode_bad flags DecodeFixed")
    expect(any("memcpy" in e for e in bad), "decode_bad flags memcpy")
    expect(any("reinterpret_cast" in e for e in bad),
           "decode_bad flags reinterpret_cast")
    expect(any("returns 'void'" in e for e in bad),
           "decode_bad flags the void-returning decoder")
    expect(any("without a CheckedReader" in e and "DecodeTail" in e for e in bad),
           "decode_bad flags the hand-walked decoder (check 9)")

    good = run_on("decode_good")
    expect(not good, "decode_good is clean (got: %s)" % "; ".join(good))

    # The real tree must satisfy its own discipline: the full linter on the
    # repo is the last fixture.
    files = list(gt_lint.src_files())
    errors = gt_lint.check_decode_discipline(files)
    expect(not errors, "src/ passes check 8 (got: %s)" % "; ".join(errors))
    errors = gt_lint.check_decode_reader(files)
    expect(not errors, "src/ passes check 9 (got: %s)" % "; ".join(errors))

    if failures:
        print(f"test_gt_lint: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("test_gt_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
